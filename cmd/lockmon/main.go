// Command lockmon is the live monitoring companion to the lock stack:
// it runs a configurable workload against an instrumented lock while
// the metrics pipeline samples it, and exposes, dumps, or diagnoses the
// resulting time series.
//
// Usage:
//
//	lockmon serve   [workload flags] [-addr :9090] [-period 1s] [-duration 0]
//	                [-debug] [-rate 8]
//	lockmon sample  [workload flags] [-period 100ms] [-duration 2s]
//	                [-format prom|json|text] [-o FILE]
//	lockmon doctor  [workload flags] [-period 100ms] [-duration 2s]
//	                | -scenario NAME
//	lockmon profile [workload flags] [-rate 8] [-duration 2s] [-top 10]
//	                [-o FILE.pb.gz] [-folded FILE] [-holds]
//	lockmon checkfmt FILE
//	lockmon profcheck FILE.pb.gz
//
// Workload flags (serve, sample, doctor, profile):
//
//	-lock goll -indicator csnzi -bias=false -wait spin
//	-threads 8 -readpct 95 -work 0 -seed 42
//
// serve runs the workload (forever with -duration 0) and serves the
// scrape endpoints: /metrics (Prometheus/OpenMetrics text, or the JSON
// time series on Accept: application/json), and /doctor (the current
// diagnosis as text; nonzero findings also set X-Lockmon-Findings).
// With -debug it additionally attaches a call-site profiler (sampling
// one acquisition in -rate) and a tracer, and mounts the unified
// /debug/ollock/ surface: pprof contention and hold profiles (delta
// with ?seconds=N), folded flamegraph stacks, the metrics and doctor
// views as JSON, and a Perfetto-loadable trace.
//
// sample runs the workload for -duration while sampling at -period and
// writes the series in the chosen format: prom (exposition text), json
// (the full ring time series), or text (a human summary plus the
// doctor's report).
//
// doctor runs the workload (or replays a scripted -scenario; see
// "lockmon doctor -scenario list") and exits 0 when the diagnosis is
// clean, 1 when findings fire, 2 on usage errors — scriptable as a CI
// gate. Scenario replay needs no workload at all: the scripted counter
// windows are evaluated directly, deterministically.
//
// profile runs the workload for -duration with a call-site profiler
// attached (sampling one acquisition in -rate), prints the -top hottest
// contended call sites, and optionally writes the pprof protobuf
// (-o, loadable with `go tool pprof`) and folded flamegraph stacks
// (-folded). -holds switches both exports and the table from the
// contention metric to the hold metric.
//
// checkfmt validates a Prometheus text exposition file (as scraped from
// /metrics) against the format rules the exporter promises, exiting
// nonzero with a line-numbered complaint on the first violation.
//
// profcheck validates a pprof profile file (as written by `lockmon
// profile -o` or fetched from /debug/ollock/profile) by decoding the
// protobuf and checking it carries at least one sample with the
// contention or hold value schema, exiting nonzero otherwise.
//
// Every exported metric name is documented in METRICS.md; the doctor's
// rules are specified in ALGORITHMS.md §14.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ollock"
	"ollock/internal/doctor"
	"ollock/internal/metrics"
	"ollock/internal/prof"
	"ollock/internal/xrand"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		cmdServe(os.Args[2:])
	case "sample":
		cmdSample(os.Args[2:])
	case "doctor":
		cmdDoctor(os.Args[2:])
	case "profile":
		cmdProfile(os.Args[2:])
	case "checkfmt":
		cmdCheckfmt(os.Args[2:])
	case "profcheck":
		cmdProfcheck(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lockmon serve|sample|doctor|profile [flags]
       lockmon checkfmt FILE
       lockmon profcheck FILE.pb.gz
run "lockmon <subcommand> -h" for the subcommand's flags`)
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "lockmon:", err)
	os.Exit(2)
}

// workloadFlags holds the shared workload shape shared by serve,
// sample and doctor.
type workloadFlags struct {
	lock      *string
	indicator *string
	bias      *bool
	wait      *string
	threads   *int
	readPct   *float64
	work      *int
	seed      *uint64
}

// kindList renders the registry's kind names for flag help text.
func kindList() string {
	var names []string
	for _, k := range ollock.Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}

func addWorkloadFlags(fs *flag.FlagSet) *workloadFlags {
	return &workloadFlags{
		lock:      fs.String("lock", "goll", "lock kind under test: "+kindList()),
		indicator: fs.String("indicator", "csnzi", "read indicator: csnzi, central or sharded"),
		bias:      fs.Bool("bias", false, "wrap with the BRAVO biased reader fast path"),
		wait:      fs.String("wait", "spin", "wait policy: spin, adaptive or array"),
		threads:   fs.Int("threads", 8, "concurrent goroutines"),
		readPct:   fs.Float64("readpct", 95, "percentage of read acquisitions"),
		work:      fs.Int("work", 0, "critical-section spin iterations"),
		seed:      fs.Uint64("seed", 42, "PRNG seed"),
	}
}

// build creates the instrumented lock on m per the flags; extra
// options (e.g. WithProfile) are appended.
func (w *workloadFlags) build(m *ollock.Metrics, extra ...ollock.Option) ollock.Lock {
	opts := []ollock.Option{
		ollock.WithMetrics(m),
		ollock.WithStats(*w.lock),
		ollock.WithIndicator(ollock.IndicatorKind(*w.indicator)),
		ollock.WithWait(ollock.WaitMode(*w.wait)),
	}
	if *w.bias {
		opts = append(opts, ollock.WithBias())
	}
	opts = append(opts, extra...)
	l, err := ollock.New(ollock.Kind(*w.lock), *w.threads, opts...)
	if err != nil {
		die(err)
	}
	return l
}

// run drives the workload until stop is closed; returns after every
// goroutine exits.
func (w *workloadFlags) run(l ollock.Lock, stop <-chan struct{}) {
	var wg sync.WaitGroup
	var sink atomic.Uint64
	readFrac := *w.readPct / 100
	for t := 0; t < *w.threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := l.NewProc()
			rng := xrand.New(*w.seed + uint64(id)*0x9E3779B9 + 1)
			var local uint64
			for {
				select {
				case <-stop:
					sink.Add(local)
					return
				default:
				}
				if rng.Bool(readFrac) {
					p.RLock()
					for i := 0; i < *w.work; i++ {
						local++
					}
					p.RUnlock()
				} else {
					p.Lock()
					for i := 0; i < *w.work; i++ {
						local++
					}
					p.Unlock()
				}
			}
		}(t)
	}
	wg.Wait()
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("lockmon serve", flag.ExitOnError)
	w := addWorkloadFlags(fs)
	addr := fs.String("addr", ":9090", "listen address")
	period := fs.Duration("period", time.Second, "sampling period")
	duration := fs.Duration("duration", 0, "stop the workload after this long (0 = run until killed)")
	debug := fs.Bool("debug", false, "attach a profiler and tracer and serve /debug/ollock/")
	rate := fs.Int("rate", 8, "with -debug: profile one acquisition in this many per proc")
	fs.Parse(args)

	var (
		p     *ollock.Profiler
		tr    *ollock.Tracer
		extra []ollock.Option
	)
	if *debug {
		p = ollock.NewProfiler(*rate)
		tr = ollock.NewTracer(0)
		extra = append(extra,
			ollock.WithProfile(p.Register(*w.lock)),
			ollock.WithTrace(tr.Register(*w.lock)))
	}
	mopts := []ollock.MetricsOption{ollock.MetricsPeriod(*period)}
	if p != nil {
		mopts = append(mopts, ollock.MetricsProfiler(p))
	}
	m := ollock.NewMetrics(mopts...)
	l := w.build(m, extra...)
	m.Start()
	stop := make(chan struct{})
	go w.run(l, stop)
	if *duration > 0 {
		go func() {
			time.Sleep(*duration)
			close(stop)
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/metrics", m.Handler())
	mux.Handle("/metrics.json", m.Handler()) // ".json" path steers the negotiation
	mux.HandleFunc("/doctor", func(rw http.ResponseWriter, _ *http.Request) {
		findings := m.Diagnose(0)
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rw.Header().Set("X-Lockmon-Findings", fmt.Sprint(len(findings)))
		fmt.Fprintln(rw, ollock.DoctorReport(findings))
	})
	surfaces := "/metrics, /metrics.json, /doctor"
	if *debug {
		mux.Handle("/debug/ollock/", ollock.DebugHandler(p, m, tr))
		surfaces += ", /debug/ollock/"
	}
	fmt.Fprintf(os.Stderr, "lockmon: serving %s on %s (lock=%s threads=%d readpct=%g)\n",
		surfaces, *addr, *w.lock, *w.threads, *w.readPct)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		die(err)
	}
}

func cmdSample(args []string) {
	fs := flag.NewFlagSet("lockmon sample", flag.ExitOnError)
	w := addWorkloadFlags(fs)
	period := fs.Duration("period", 100*time.Millisecond, "sampling period")
	duration := fs.Duration("duration", 2*time.Second, "workload duration")
	format := fs.String("format", "text", "output format: prom, json or text")
	out := fs.String("o", "", "write to this file instead of stdout")
	fs.Parse(args)

	m := ollock.NewMetrics(ollock.MetricsPeriod(*period))
	l := w.build(m)
	m.Start()
	stop := make(chan struct{})
	go func() {
		time.Sleep(*duration)
		close(stop)
	}()
	w.run(l, stop)
	m.Stop()
	m.Sample() // final point so the last partial period is covered

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		dst = f
	}
	switch *format {
	case "prom":
		if err := m.WritePrometheus(dst); err != nil {
			die(err)
		}
	case "json":
		rec := httpDump{m: m}
		if err := rec.writeJSON(dst); err != nil {
			die(err)
		}
	case "text":
		printSummary(dst, l, m)
	default:
		die(fmt.Errorf("unknown -format %q", *format))
	}
}

// httpDump adapts the handler's JSON view for file output without
// spinning up a server.
type httpDump struct{ m *ollock.Metrics }

func (h httpDump) writeJSON(dst *os.File) error {
	req, _ := http.NewRequest("GET", "/metrics.json", nil)
	req.Header.Set("Accept", "application/json")
	rw := &fileResponse{f: dst, hdr: http.Header{}}
	h.m.Handler().ServeHTTP(rw, req)
	return rw.err
}

type fileResponse struct {
	f   *os.File
	hdr http.Header
	err error
}

func (r *fileResponse) Header() http.Header { return r.hdr }
func (r *fileResponse) WriteHeader(int)     {}
func (r *fileResponse) Write(p []byte) (int, error) {
	n, err := r.f.Write(p)
	if err != nil && r.err == nil {
		r.err = err
	}
	return n, err
}

// printSummary renders the human view: final counters, wait histograms,
// and the doctor's opinion.
func printSummary(dst *os.File, l ollock.Lock, m *ollock.Metrics) {
	sn, ok := ollock.SnapshotOf(l)
	if !ok {
		die(fmt.Errorf("lock has no instrumentation"))
	}
	fmt.Fprintf(dst, "samples: %d\n\ncounters:\n", m.Samples())
	for _, name := range sn.Names() {
		if sn.Counters[name] != 0 {
			fmt.Fprintf(dst, "  %-24s %12d\n", name, sn.Counters[name])
		}
	}
	hists := make([]string, 0, len(sn.Hists))
	for name := range sn.Hists {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	fmt.Fprintln(dst, "\nhistograms:")
	for _, name := range hists {
		h := sn.Hists[name]
		fmt.Fprintf(dst, "  %-24s count=%d p50=%dns p99=%dns max=%dns\n",
			name, h.Count, h.P50, h.P99, h.Max)
	}
	fmt.Fprintf(dst, "\n%s\n", ollock.DoctorReport(m.Diagnose(0)))
}

func cmdDoctor(args []string) {
	fs := flag.NewFlagSet("lockmon doctor", flag.ExitOnError)
	w := addWorkloadFlags(fs)
	period := fs.Duration("period", 100*time.Millisecond, "sampling period")
	duration := fs.Duration("duration", 2*time.Second, "workload duration")
	scenario := fs.String("scenario", "", `evaluate a scripted scenario instead of running a workload ("list" to enumerate)`)
	fs.Parse(args)

	var findings []ollock.Finding
	if *scenario != "" {
		if *scenario == "list" {
			fmt.Println(strings.Join(doctor.ScenarioNames(), "\n"))
			return
		}
		windows, err := doctor.Scenario(*scenario)
		if err != nil {
			die(err)
		}
		findings = doctor.Diagnose(doctor.DefaultConfig(), windows)
	} else {
		m := ollock.NewMetrics(ollock.MetricsPeriod(*period))
		l := w.build(m)
		m.Start()
		stop := make(chan struct{})
		go func() {
			time.Sleep(*duration)
			close(stop)
		}()
		w.run(l, stop)
		m.Stop()
		findings = m.Diagnose(0)
	}
	fmt.Println(ollock.DoctorReport(findings))
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func cmdProfile(args []string) {
	fs := flag.NewFlagSet("lockmon profile", flag.ExitOnError)
	w := addWorkloadFlags(fs)
	rate := fs.Int("rate", 8, "profile one acquisition in this many per proc")
	duration := fs.Duration("duration", 2*time.Second, "workload duration")
	top := fs.Int("top", 10, "call sites to print")
	out := fs.String("o", "", "write the pprof protobuf profile to this file")
	folded := fs.String("folded", "", "write folded flamegraph stacks to this file")
	holds := fs.Bool("holds", false, "export the hold metric instead of contention")
	fs.Parse(args)

	p := ollock.NewProfiler(*rate)
	m := ollock.NewMetrics(ollock.MetricsProfiler(p))
	l := w.build(m, ollock.WithProfile(p.Register(*w.lock)))
	m.Start()
	stop := make(chan struct{})
	go func() {
		time.Sleep(*duration)
		close(stop)
	}()
	w.run(l, stop)
	m.Stop()

	metric := ollock.ProfileContention
	if *holds {
		metric = ollock.ProfileHold
	}
	snap := p.Profile()
	printProfileTop(snap, metric, *top)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		if err := snap.WriteProfile(f, metric); err != nil {
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "lockmon: wrote %s profile to %s\n", metric, *out)
	}
	if *folded != "" {
		f, err := os.Create(*folded)
		if err != nil {
			die(err)
		}
		if err := snap.WriteFolded(f, metric); err != nil {
			die(err)
		}
		if err := f.Close(); err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "lockmon: wrote folded stacks to %s\n", *folded)
	}
}

// printProfileTop renders the hottest call sites, one line per record,
// ordered by the chosen metric's time value.
func printProfileTop(snap *ollock.ProfileSnapshot, metric ollock.ProfileMetric, top int) {
	recs := make([]ollock.ProfileRecord, len(snap.Records))
	copy(recs, snap.Records)
	value := func(r ollock.ProfileRecord) (count, ns uint64) {
		if metric == ollock.ProfileHold {
			return r.Holds, r.HeldNs
		}
		return r.Contentions, r.DelayNs
	}
	sort.SliceStable(recs, func(i, j int) bool {
		_, a := value(recs[i])
		_, b := value(recs[j])
		return a > b
	})
	fmt.Printf("%s profile: rate=1/%d records=%d dropped=%d\n\n",
		metric, snap.Rate, len(recs), snap.Dropped)
	fmt.Printf("  %12s %14s  %s\n", "count", "time", "call site")
	n := 0
	for _, r := range recs {
		count, ns := value(r)
		if count == 0 {
			continue
		}
		site := r.Site()
		fmt.Printf("  %12d %14s  %s %s:%d (lock=%s)\n",
			count, time.Duration(ns), site.Func, filepath.Base(site.File), site.Line, r.Lock)
		n++
		if n >= top {
			break
		}
	}
	if n == 0 {
		fmt.Println("  (no samples — longer -duration, lower -rate, or more contention needed)")
	}
}

func cmdProfcheck(args []string) {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		die(err)
	}
	parsed, err := prof.Parse(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockmon: %s: %v\n", args[0], err)
		os.Exit(1)
	}
	schema := make([]string, 0, len(parsed.SampleTypes))
	for _, vt := range parsed.SampleTypes {
		schema = append(schema, vt.Type+"/"+vt.Unit)
	}
	want := strings.Join(schema, " ")
	switch want {
	case "contentions/count delay/nanoseconds", "holds/count held/nanoseconds":
	default:
		fmt.Fprintf(os.Stderr, "lockmon: %s: unexpected sample schema %q\n", args[0], want)
		os.Exit(1)
	}
	if len(parsed.Samples) == 0 {
		fmt.Fprintf(os.Stderr, "lockmon: %s: profile has no samples\n", args[0])
		os.Exit(1)
	}
	fmt.Printf("%s: valid pprof profile (%s, %d samples)\n", args[0], want, len(parsed.Samples))
}

func cmdCheckfmt(args []string) {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		die(err)
	}
	if err := metrics.ValidateExposition(data); err != nil {
		fmt.Fprintf(os.Stderr, "lockmon: %s: %v\n", args[0], err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid Prometheus exposition\n", args[0])
}
