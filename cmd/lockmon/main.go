// Command lockmon is the live monitoring companion to the lock stack:
// it runs a configurable workload against an instrumented lock while
// the metrics pipeline samples it, and exposes, dumps, or diagnoses the
// resulting time series.
//
// Usage:
//
//	lockmon serve   [workload flags] [-addr :9090] [-period 1s] [-duration 0]
//	lockmon sample  [workload flags] [-period 100ms] [-duration 2s]
//	                [-format prom|json|text] [-o FILE]
//	lockmon doctor  [workload flags] [-period 100ms] [-duration 2s]
//	                | -scenario NAME
//	lockmon checkfmt FILE
//
// Workload flags (serve, sample, doctor):
//
//	-lock goll -indicator csnzi -bias=false -wait spin
//	-threads 8 -readpct 95 -work 0 -seed 42
//
// serve runs the workload (forever with -duration 0) and serves the
// scrape endpoints: /metrics (Prometheus/OpenMetrics text, or the JSON
// time series on Accept: application/json), and /doctor (the current
// diagnosis as text; nonzero findings also set X-Lockmon-Findings).
//
// sample runs the workload for -duration while sampling at -period and
// writes the series in the chosen format: prom (exposition text), json
// (the full ring time series), or text (a human summary plus the
// doctor's report).
//
// doctor runs the workload (or replays a scripted -scenario; see
// "lockmon doctor -scenario list") and exits 0 when the diagnosis is
// clean, 1 when findings fire, 2 on usage errors — scriptable as a CI
// gate. Scenario replay needs no workload at all: the scripted counter
// windows are evaluated directly, deterministically.
//
// checkfmt validates a Prometheus text exposition file (as scraped from
// /metrics) against the format rules the exporter promises, exiting
// nonzero with a line-numbered complaint on the first violation.
//
// Every exported metric name is documented in METRICS.md; the doctor's
// rules are specified in ALGORITHMS.md §14.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ollock"
	"ollock/internal/doctor"
	"ollock/internal/metrics"
	"ollock/internal/xrand"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		cmdServe(os.Args[2:])
	case "sample":
		cmdSample(os.Args[2:])
	case "doctor":
		cmdDoctor(os.Args[2:])
	case "checkfmt":
		cmdCheckfmt(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lockmon serve|sample|doctor [flags]
       lockmon checkfmt FILE
run "lockmon <subcommand> -h" for the subcommand's flags`)
	os.Exit(2)
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "lockmon:", err)
	os.Exit(2)
}

// workloadFlags holds the shared workload shape shared by serve,
// sample and doctor.
type workloadFlags struct {
	lock      *string
	indicator *string
	bias      *bool
	wait      *string
	threads   *int
	readPct   *float64
	work      *int
	seed      *uint64
}

// kindList renders the registry's kind names for flag help text.
func kindList() string {
	var names []string
	for _, k := range ollock.Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}

func addWorkloadFlags(fs *flag.FlagSet) *workloadFlags {
	return &workloadFlags{
		lock:      fs.String("lock", "goll", "lock kind under test: "+kindList()),
		indicator: fs.String("indicator", "csnzi", "read indicator: csnzi, central or sharded"),
		bias:      fs.Bool("bias", false, "wrap with the BRAVO biased reader fast path"),
		wait:      fs.String("wait", "spin", "wait policy: spin, adaptive or array"),
		threads:   fs.Int("threads", 8, "concurrent goroutines"),
		readPct:   fs.Float64("readpct", 95, "percentage of read acquisitions"),
		work:      fs.Int("work", 0, "critical-section spin iterations"),
		seed:      fs.Uint64("seed", 42, "PRNG seed"),
	}
}

// build creates the instrumented lock on m per the flags.
func (w *workloadFlags) build(m *ollock.Metrics) ollock.Lock {
	opts := []ollock.Option{
		ollock.WithMetrics(m),
		ollock.WithStats(*w.lock),
		ollock.WithIndicator(ollock.IndicatorKind(*w.indicator)),
		ollock.WithWait(ollock.WaitMode(*w.wait)),
	}
	if *w.bias {
		opts = append(opts, ollock.WithBias())
	}
	l, err := ollock.New(ollock.Kind(*w.lock), *w.threads, opts...)
	if err != nil {
		die(err)
	}
	return l
}

// run drives the workload until stop is closed; returns after every
// goroutine exits.
func (w *workloadFlags) run(l ollock.Lock, stop <-chan struct{}) {
	var wg sync.WaitGroup
	var sink atomic.Uint64
	readFrac := *w.readPct / 100
	for t := 0; t < *w.threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := l.NewProc()
			rng := xrand.New(*w.seed + uint64(id)*0x9E3779B9 + 1)
			var local uint64
			for {
				select {
				case <-stop:
					sink.Add(local)
					return
				default:
				}
				if rng.Bool(readFrac) {
					p.RLock()
					for i := 0; i < *w.work; i++ {
						local++
					}
					p.RUnlock()
				} else {
					p.Lock()
					for i := 0; i < *w.work; i++ {
						local++
					}
					p.Unlock()
				}
			}
		}(t)
	}
	wg.Wait()
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("lockmon serve", flag.ExitOnError)
	w := addWorkloadFlags(fs)
	addr := fs.String("addr", ":9090", "listen address")
	period := fs.Duration("period", time.Second, "sampling period")
	duration := fs.Duration("duration", 0, "stop the workload after this long (0 = run until killed)")
	fs.Parse(args)

	m := ollock.NewMetrics(ollock.MetricsPeriod(*period))
	l := w.build(m)
	m.Start()
	stop := make(chan struct{})
	go w.run(l, stop)
	if *duration > 0 {
		go func() {
			time.Sleep(*duration)
			close(stop)
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/metrics", m.Handler())
	mux.Handle("/metrics.json", m.Handler()) // ".json" path steers the negotiation
	mux.HandleFunc("/doctor", func(rw http.ResponseWriter, _ *http.Request) {
		findings := m.Diagnose(0)
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rw.Header().Set("X-Lockmon-Findings", fmt.Sprint(len(findings)))
		fmt.Fprintln(rw, ollock.DoctorReport(findings))
	})
	fmt.Fprintf(os.Stderr, "lockmon: serving /metrics, /metrics.json, /doctor on %s (lock=%s threads=%d readpct=%g)\n",
		*addr, *w.lock, *w.threads, *w.readPct)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		die(err)
	}
}

func cmdSample(args []string) {
	fs := flag.NewFlagSet("lockmon sample", flag.ExitOnError)
	w := addWorkloadFlags(fs)
	period := fs.Duration("period", 100*time.Millisecond, "sampling period")
	duration := fs.Duration("duration", 2*time.Second, "workload duration")
	format := fs.String("format", "text", "output format: prom, json or text")
	out := fs.String("o", "", "write to this file instead of stdout")
	fs.Parse(args)

	m := ollock.NewMetrics(ollock.MetricsPeriod(*period))
	l := w.build(m)
	m.Start()
	stop := make(chan struct{})
	go func() {
		time.Sleep(*duration)
		close(stop)
	}()
	w.run(l, stop)
	m.Stop()
	m.Sample() // final point so the last partial period is covered

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			die(err)
		}
		defer f.Close()
		dst = f
	}
	switch *format {
	case "prom":
		if err := m.WritePrometheus(dst); err != nil {
			die(err)
		}
	case "json":
		rec := httpDump{m: m}
		if err := rec.writeJSON(dst); err != nil {
			die(err)
		}
	case "text":
		printSummary(dst, l, m)
	default:
		die(fmt.Errorf("unknown -format %q", *format))
	}
}

// httpDump adapts the handler's JSON view for file output without
// spinning up a server.
type httpDump struct{ m *ollock.Metrics }

func (h httpDump) writeJSON(dst *os.File) error {
	req, _ := http.NewRequest("GET", "/metrics.json", nil)
	req.Header.Set("Accept", "application/json")
	rw := &fileResponse{f: dst, hdr: http.Header{}}
	h.m.Handler().ServeHTTP(rw, req)
	return rw.err
}

type fileResponse struct {
	f   *os.File
	hdr http.Header
	err error
}

func (r *fileResponse) Header() http.Header { return r.hdr }
func (r *fileResponse) WriteHeader(int)     {}
func (r *fileResponse) Write(p []byte) (int, error) {
	n, err := r.f.Write(p)
	if err != nil && r.err == nil {
		r.err = err
	}
	return n, err
}

// printSummary renders the human view: final counters, wait histograms,
// and the doctor's opinion.
func printSummary(dst *os.File, l ollock.Lock, m *ollock.Metrics) {
	sn, ok := ollock.SnapshotOf(l)
	if !ok {
		die(fmt.Errorf("lock has no instrumentation"))
	}
	fmt.Fprintf(dst, "samples: %d\n\ncounters:\n", m.Samples())
	for _, name := range sn.Names() {
		if sn.Counters[name] != 0 {
			fmt.Fprintf(dst, "  %-24s %12d\n", name, sn.Counters[name])
		}
	}
	hists := make([]string, 0, len(sn.Hists))
	for name := range sn.Hists {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	fmt.Fprintln(dst, "\nhistograms:")
	for _, name := range hists {
		h := sn.Hists[name]
		fmt.Fprintf(dst, "  %-24s count=%d p50=%dns p99=%dns max=%dns\n",
			name, h.Count, h.P50, h.P99, h.Max)
	}
	fmt.Fprintf(dst, "\n%s\n", ollock.DoctorReport(m.Diagnose(0)))
}

func cmdDoctor(args []string) {
	fs := flag.NewFlagSet("lockmon doctor", flag.ExitOnError)
	w := addWorkloadFlags(fs)
	period := fs.Duration("period", 100*time.Millisecond, "sampling period")
	duration := fs.Duration("duration", 2*time.Second, "workload duration")
	scenario := fs.String("scenario", "", `evaluate a scripted scenario instead of running a workload ("list" to enumerate)`)
	fs.Parse(args)

	var findings []ollock.Finding
	if *scenario != "" {
		if *scenario == "list" {
			fmt.Println(strings.Join(doctor.ScenarioNames(), "\n"))
			return
		}
		windows, err := doctor.Scenario(*scenario)
		if err != nil {
			die(err)
		}
		findings = doctor.Diagnose(doctor.DefaultConfig(), windows)
	} else {
		m := ollock.NewMetrics(ollock.MetricsPeriod(*period))
		l := w.build(m)
		m.Start()
		stop := make(chan struct{})
		go func() {
			time.Sleep(*duration)
			close(stop)
		}()
		w.run(l, stop)
		m.Stop()
		findings = m.Diagnose(0)
	}
	fmt.Println(ollock.DoctorReport(findings))
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func cmdCheckfmt(args []string) {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		die(err)
	}
	if err := metrics.ValidateExposition(data); err != nil {
		fmt.Fprintf(os.Stderr, "lockmon: %s: %v\n", args[0], err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid Prometheus exposition\n", args[0])
}
