// Command benchfig5 runs the paper's Figure 5 experiment with real
// goroutines on the host machine (§5.1 methodology: every thread
// acquires and releases one lock in a tight loop with an empty critical
// section, read/write chosen by a private PRNG).
//
// On a machine with many cores this reproduces the relative ordering of
// the locks directly; on small hosts use cmd/simfig5, which models the
// paper's 256-thread T5440.
//
// Usage:
//
//	benchfig5 [-panel a|b|c|d|e|f|all] [-threads 1,2,4,...] [-ops N]
//	          [-runs N] [-seed N] [-locks ...] [-indicator csnzi|central|sharded]
//	          [-csv]
//
// The -indicator flag selects the read indicator backing the OLL locks
// (ollock.WithIndicator): with central or sharded, the goll/foll/roll
// entries are remapped to their lock × indicator matrix variants
// (goll-central, roll-sharded, ...); the baseline locks are unaffected.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"ollock/internal/harness"
	"ollock/internal/lockcore"
	"ollock/internal/locksuite"
)

// defaultLocks is the Figure 5 legend, read from the kind registry.
func defaultLocks() string {
	var names []string
	for _, d := range lockcore.Descs() {
		if d.Figure5 {
			names = append(names, d.Name)
		}
	}
	return strings.Join(names, ",")
}

var panels = map[string]float64{
	"a": 1.00, "b": 0.99, "c": 0.95, "d": 0.80, "e": 0.50, "f": 0.00,
}

var panelOrder = []string{"a", "b", "c", "d", "e", "f"}

func defaultThreads() string {
	max := runtime.GOMAXPROCS(0) * 4
	var parts []string
	for n := 1; n <= max; n *= 2 {
		parts = append(parts, strconv.Itoa(n))
	}
	return strings.Join(parts, ",")
}

func main() {
	panel := flag.String("panel", "all", "panel: a..f or all")
	threadsFlag := flag.String("threads", defaultThreads(), "comma-separated goroutine counts")
	ops := flag.Int("ops", 20000, "acquisitions per goroutine (paper: 100000; 10000 at <=50% reads)")
	runs := flag.Int("runs", 3, "runs to average (paper uses 3)")
	seed := flag.Uint64("seed", 42, "base PRNG seed")
	locksFlag := flag.String("locks", defaultLocks(), "comma-separated lock subset (see -list)")
	indicator := flag.String("indicator", "csnzi", "read indicator for the OLL locks: csnzi, central or sharded")
	list := flag.Bool("list", false, "list available locks and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	if *list {
		for _, impl := range locksuite.Locks {
			fmt.Println(impl.Name)
		}
		return
	}
	threads, err := parseInts(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfig5:", err)
		os.Exit(2)
	}
	var impls []locksuite.Impl
	for _, name := range strings.Split(*locksFlag, ",") {
		name = indicatorVariant(strings.TrimSpace(name), *indicator)
		impl := locksuite.ByName(name)
		if impl == nil {
			fmt.Fprintf(os.Stderr, "benchfig5: unknown lock %q (use -list)\n", name)
			os.Exit(2)
		}
		impls = append(impls, *impl)
	}
	var selected []string
	if *panel == "all" {
		selected = panelOrder
	} else if _, ok := panels[*panel]; ok {
		selected = []string{*panel}
	} else {
		fmt.Fprintf(os.Stderr, "benchfig5: unknown panel %q\n", *panel)
		os.Exit(2)
	}

	fmt.Printf("host: GOMAXPROCS=%d NumCPU=%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	if *csv {
		fmt.Println("panel,read_pct,lock,threads,throughput_acq_per_s")
	}
	for _, p := range selected {
		frac := panels[p]
		opsPerThread := *ops
		if frac <= 0.5 && opsPerThread > 2000 {
			// Mirror the paper's shorter runs under heavy writer load.
			opsPerThread = *ops / 10
		}
		var panelOut harness.Panel
		panelOut.ReadFraction = frac
		for _, impl := range impls {
			s := harness.Sweep(impl, threads, frac, opsPerThread, *runs, *seed)
			panelOut.Series = append(panelOut.Series, s)
			if *csv {
				for _, pt := range s.Points {
					fmt.Printf("%s,%.0f,%s,%d,%.6e\n", p, frac*100, s.Lock, pt.Threads, pt.Throughput)
				}
			}
		}
		if !*csv {
			fmt.Printf("Figure 5(%s) — real goroutines, %d ops/thread, %d run(s)\n", p, opsPerThread, *runs)
			if err := panelOut.WriteTable(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "benchfig5:", err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}
}

// indicatorVariant maps an OLL lock name to its lock × indicator
// matrix entry for a non-default indicator; other names pass through.
// Matrix membership comes from the kind registry.
func indicatorVariant(name, indicator string) string {
	if indicator == "" || indicator == "csnzi" {
		return name
	}
	if d, ok := lockcore.DescOf(name); ok && d.IndicatorMatrix {
		return name + "-" + indicator
	}
	return name
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
