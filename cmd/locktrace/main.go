// Command locktrace drives the flight-recorder tracing layer
// (ollock.WithTrace) end to end: record a traced workload, export a
// recording to Perfetto, fold it into a contention profile, validate it
// against the checked-in schema, or run the stall-watchdog demo.
//
// Usage:
//
//	locktrace record [-lock goll,roll,...] [-indicator csnzi|central|sharded]
//	                 [-threads N] [-ops N] [-readpct 0..100] [-seed N]
//	                 [-events N] [-out trace.json]
//	locktrace export [-out trace.chrome.json] recording.json
//	locktrace top    recording.json
//	locktrace check  [-schema TRACE_events.schema.json] recording.json
//	locktrace watch  [-lock goll] [-indicator sharded] [-threads N]
//	                 [-threshold D] [-hold D]
//
// record runs the §5.1 workload shape against each requested lock kind
// with a shared flight recorder attached and writes the portable
// recording JSON (schema: TRACE_events.schema.json).
//
// export converts a recording to Chrome trace-event JSON: load the
// result in https://ui.perfetto.dev (or chrome://tracing) to see one
// process track per lock and one thread track per proc, with acquire
// and held spans enclosing the wait-phase spans.
//
// top folds a recording into a wait-time-by-phase-by-lock table, the
// pprof-style "where did the blocked time go" view.
//
// check validates a recording against the JSON schema, as CI does.
//
// watch demonstrates the stall watchdog: it wedges the lock by holding
// a write acquisition while readers pile up behind it, and the watchdog
// names each stuck proc's wait phase and dumps the live queue nodes and
// decoded indicator gate word.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"ollock"
	"ollock/internal/harness"
	"ollock/internal/jsonschema"
	"ollock/internal/locksuite"
	"ollock/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "locktrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: locktrace <record|export|top|check|watch> [flags]")
	os.Exit(2)
}

// kindList renders the registry's kind names for flag help text.
func kindList() string {
	var names []string
	for _, k := range ollock.Kinds() {
		names = append(names, string(k))
	}
	return strings.Join(names, ", ")
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	lockFlag := fs.String("lock", "goll,foll,roll", "comma-separated lock kinds to trace (available: "+kindList()+")")
	indicator := fs.String("indicator", "csnzi", "read indicator for the OLL locks")
	threads := fs.Int("threads", 8, "concurrent goroutines")
	ops := fs.Int("ops", 5000, "acquisitions per goroutine")
	readPct := fs.Float64("readpct", 95, "percentage of read acquisitions")
	seed := fs.Uint64("seed", 42, "PRNG seed")
	events := fs.Int("events", 0, "ring capacity per proc (0 = default)")
	out := fs.String("out", "trace.json", "output recording file (- for stdout)")
	fs.Parse(args)

	tracer := ollock.NewTracer(*events)
	for _, name := range strings.Split(*lockFlag, ",") {
		kind := ollock.Kind(strings.TrimSpace(name))
		l, err := ollock.New(kind, *threads,
			ollock.WithTrace(tracer.Register(string(kind))),
			ollock.WithIndicator(ollock.IndicatorKind(*indicator)))
		if err != nil {
			return err
		}
		tp := harness.RunOn(harness.Config{
			Threads:      *threads,
			ReadFraction: *readPct / 100,
			OpsPerThread: *ops,
			Seed:         *seed,
		}, func() locksuite.Proc { return l.NewProc() })
		fmt.Fprintf(os.Stderr, "locktrace: %s: %.3e acq/s\n", kind, tp)
	}
	rec := tracer.Record()
	w, closeW, err := outWriter(*out)
	if err != nil {
		return err
	}
	if err := rec.WriteJSON(w); err != nil {
		closeW()
		return err
	}
	if err := closeW(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "locktrace: recorded %d events\n", len(rec.Events))
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	out := fs.String("out", "-", "output Chrome trace file (- for stdout)")
	fs.Parse(args)
	rec, err := readRecording(fs.Args())
	if err != nil {
		return err
	}
	evs, lockName, err := rec.Decode()
	if err != nil {
		return err
	}
	w, closeW, err := outWriter(*out)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(w, evs, lockName); err != nil {
		closeW()
		return err
	}
	return closeW()
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	fs.Parse(args)
	rec, err := readRecording(fs.Args())
	if err != nil {
		return err
	}
	evs, lockName, err := rec.Decode()
	if err != nil {
		return err
	}
	trace.Fold(evs, lockName).WriteTop(os.Stdout)
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	schemaPath := fs.String("schema", "TRACE_events.schema.json", "schema file")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("check: want exactly one recording file")
	}
	raw, err := os.ReadFile(*schemaPath)
	if err != nil {
		return err
	}
	var schema jsonschema.Schema
	if err := json.Unmarshal(raw, &schema); err != nil {
		return fmt.Errorf("%s: %w", *schemaPath, err)
	}
	doc, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := jsonschema.ValidateBytes(&schema, doc); err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	fmt.Printf("locktrace: %s conforms to %s\n", fs.Arg(0), *schemaPath)
	return nil
}

func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	lockFlag := fs.String("lock", "goll", "lock kind to wedge (available: "+kindList()+")")
	indicator := fs.String("indicator", "sharded", "read indicator for the OLL locks")
	threads := fs.Int("threads", 4, "readers to pile up behind the held write lock")
	threshold := fs.Duration("threshold", 50*time.Millisecond, "stall threshold")
	hold := fs.Duration("hold", 500*time.Millisecond, "how long the writer wedges the lock")
	fs.Parse(args)

	tracer := ollock.NewTracer(0)
	kind := ollock.Kind(*lockFlag)
	l, err := ollock.New(kind, *threads+1,
		ollock.WithTrace(tracer.Register(string(kind))),
		ollock.WithIndicator(ollock.IndicatorKind(*indicator)))
	if err != nil {
		return err
	}
	wd := ollock.NewTraceWatchdog(tracer, *threshold, os.Stdout)
	wd.Start()
	defer wd.Stop()

	// Wedge: take the write lock and sit on it while readers queue up.
	writer := l.NewProc()
	writer.Lock()
	fmt.Printf("locktrace: writer holding %s for %v; %d readers piling up\n", kind, *hold, *threads)
	var wg sync.WaitGroup
	for i := 0; i < *threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := l.NewProc()
			p.RLock()
			p.RUnlock()
		}()
	}
	time.Sleep(*hold)
	writer.Unlock()
	wg.Wait()
	// One last poll so a stall that crossed the threshold between ticker
	// firings still gets reported before exit.
	stalls := wd.CheckNow()
	fmt.Printf("locktrace: lock released; %d stalls pending at exit\n", len(stalls))
	return nil
}

func readRecording(args []string) (ollock.TraceRecording, error) {
	if len(args) != 1 {
		return ollock.TraceRecording{}, fmt.Errorf("want exactly one recording file")
	}
	var r io.Reader
	if args[0] == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(args[0])
		if err != nil {
			return ollock.TraceRecording{}, err
		}
		defer f.Close()
		r = f
	}
	return trace.ReadRecording(r)
}

func outWriter(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}
