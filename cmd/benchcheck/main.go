// Command benchcheck validates machine-readable benchmark artifacts
// against a checked-in JSON schema (internal/jsonschema). CI runs it
// after `make bench-json` so a field renamed or dropped in cmd/benchbravo
// fails the build instead of silently breaking downstream consumers.
//
// Usage:
//
//	benchcheck -schema BENCH_bravo.schema.json FILE...
//
// Exits 0 when every file conforms, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ollock/internal/jsonschema"
)

func main() {
	schemaPath := flag.String("schema", "BENCH_bravo.schema.json", "schema file to validate against")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck -schema SCHEMA FILE...")
		os.Exit(2)
	}

	raw, err := os.ReadFile(*schemaPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
	var schema jsonschema.Schema
	if err := json.Unmarshal(raw, &schema); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", *schemaPath, err)
		os.Exit(1)
	}

	fail := false
	for _, path := range flag.Args() {
		doc, err := os.ReadFile(path)
		if err == nil {
			err = jsonschema.ValidateBytes(&schema, doc)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			fail = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if fail {
		os.Exit(1)
	}
}
