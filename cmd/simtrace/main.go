// Command simtrace replays a small lock scenario on the simulator and
// dumps the shared-memory event trace — every load, store, CAS, park
// and wake with virtual timestamps. It exists to make the algorithms
// inspectable: the interleaving that explains a throughput number (or a
// bug) can be read line by line.
//
// Usage:
//
//	simtrace [-lock roll] [-threads 3] [-ops 2] [-readpct 50]
//	         [-seed 1] [-max 400]
//
// Output columns: virtual time, thread, event, word id, value.
package main

import (
	"flag"
	"fmt"
	"os"

	"ollock/internal/sim"
	"ollock/internal/sim/simlock"
	"ollock/internal/xrand"
)

func main() {
	lockName := flag.String("lock", "roll", "lock to trace (goll|foll|roll|ksuh|solaris|mcs-rw|hsieh|central)")
	threads := flag.Int("threads", 3, "simulated threads")
	ops := flag.Int("ops", 2, "acquisitions per thread")
	readPct := flag.Float64("readpct", 50, "percentage of read acquisitions")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	max := flag.Int("max", 400, "maximum events to print (0 = unlimited)")
	flag.Parse()

	f := simlock.ByName(*lockName)
	if f == nil {
		fmt.Fprintf(os.Stderr, "simtrace: unknown lock %q\n", *lockName)
		os.Exit(2)
	}

	cfg := sim.T5440()
	cfg.MaxSteps = 10_000_000
	m := sim.New(cfg)
	printed := 0
	truncated := false
	m.SetTrace(func(e sim.Event) {
		if *max > 0 && printed >= *max {
			truncated = true
			return
		}
		printed++
		switch e.Kind {
		case sim.EvSpinWake:
			fmt.Printf("%8d  t%-3d %-5s w%-4d = %-6d (by t%d)\n",
				e.Time, e.Thread, e.Kind, e.Word, e.Value, e.Waker)
		case sim.EvWork:
			fmt.Printf("%8d  t%-3d %-5s %d cycles\n", e.Time, e.Thread, e.Kind, e.Value)
		default:
			fmt.Printf("%8d  t%-3d %-5s w%-4d = %d\n", e.Time, e.Thread, e.Kind, e.Word, e.Value)
		}
	})

	l := f.New(m, *threads)
	for i := 0; i < *threads; i++ {
		p := l.NewProc(i)
		rng := xrand.New(*seed + uint64(i)*977)
		id := i
		m.Spawn(func(c *sim.Ctx) {
			for j := 0; j < *ops; j++ {
				if rng.Bool(*readPct / 100) {
					p.RLock(c)
					c.Work(10)
					p.RUnlock(c)
				} else {
					p.Lock(c)
					c.Work(10)
					p.Unlock(c)
				}
			}
			_ = id
		})
	}
	cycles := m.Run()
	if truncated {
		fmt.Printf("... trace truncated at %d events (-max)\n", *max)
	}
	fmt.Printf("done: %s, %d threads x %d ops, %d virtual cycles, %d scheduler steps, %d words\n",
		f.Name, *threads, *ops, cycles, m.Steps(), m.Words())
}
