// Command simtrace replays a small lock scenario on the simulator and
// dumps the shared-memory event trace — every load, store, CAS, park
// and wake with virtual timestamps. It exists to make the algorithms
// inspectable: the interleaving that explains a throughput number (or a
// bug) can be read line by line.
//
// Usage:
//
//	simtrace [-lock roll] [-threads 3] [-ops 2] [-readpct 50]
//	         [-seed 1] [-max 400]
//
// Output columns: virtual time, thread, event, word id, value. After
// the trace the command prints the lock's obs counters (for
// instrumented kinds) and exits non-zero if any critical section saw
// the reader-writer exclusion invariant violated.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ollock/internal/sim"
	"ollock/internal/sim/simlock"
	"ollock/internal/xrand"
)

func main() {
	lockName := flag.String("lock", "roll", "lock to trace (goll|foll|roll|ksuh|solaris|mcs-rw|hsieh|central)")
	threads := flag.Int("threads", 3, "simulated threads")
	ops := flag.Int("ops", 2, "acquisitions per thread")
	readPct := flag.Float64("readpct", 50, "percentage of read acquisitions")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	max := flag.Int("max", 400, "maximum events to print (0 = unlimited)")
	flag.Parse()

	f := simlock.ByName(*lockName)
	if f == nil {
		fmt.Fprintf(os.Stderr, "simtrace: unknown lock %q\n", *lockName)
		os.Exit(2)
	}

	cfg := sim.T5440()
	cfg.MaxSteps = 10_000_000
	m := sim.New(cfg)
	printed := 0
	truncated := false
	m.SetTrace(func(e sim.Event) {
		if *max > 0 && printed >= *max {
			truncated = true
			return
		}
		printed++
		switch e.Kind {
		case sim.EvSpinWake:
			fmt.Printf("%8d  t%-3d %-5s w%-4d = %-6d (by t%d)\n",
				e.Time, e.Thread, e.Kind, e.Word, e.Value, e.Waker)
		case sim.EvWork:
			fmt.Printf("%8d  t%-3d %-5s %d cycles\n", e.Time, e.Thread, e.Kind, e.Value)
		default:
			fmt.Printf("%8d  t%-3d %-5s w%-4d = %d\n", e.Time, e.Thread, e.Kind, e.Word, e.Value)
		}
	})

	l := f.New(m, *threads)
	// Host-side invariant counters are safe: simulated threads execute
	// one at a time, and the Work call inside each critical section
	// opens the interleaving window that would expose a broken lock.
	var readers, writers, violations int
	for i := 0; i < *threads; i++ {
		p := l.NewProc(i)
		rng := xrand.New(*seed + uint64(i)*977)
		m.Spawn(func(c *sim.Ctx) {
			for j := 0; j < *ops; j++ {
				if rng.Bool(*readPct / 100) {
					p.RLock(c)
					readers++
					if writers != 0 {
						violations++
					}
					c.Work(10)
					if writers != 0 {
						violations++
					}
					readers--
					p.RUnlock(c)
				} else {
					p.Lock(c)
					writers++
					if writers != 1 || readers != 0 {
						violations++
					}
					c.Work(10)
					if writers != 1 || readers != 0 {
						violations++
					}
					writers--
					p.Unlock(c)
				}
			}
		})
	}
	cycles := m.Run()
	if truncated {
		fmt.Printf("... trace truncated at %d events (-max)\n", *max)
	}
	fmt.Printf("done: %s, %d threads x %d ops, %d virtual cycles, %d scheduler steps, %d words\n",
		f.Name, *threads, *ops, cycles, m.Steps(), m.Words())
	if st := simlock.StatsOf(l); st != nil {
		sn := st.Snapshot()
		fmt.Println("counters:")
		for _, name := range sn.Names() {
			fmt.Printf("  %-24s %d\n", name, sn.Counters[name])
		}
		hists := make([]string, 0, len(sn.Hists))
		for name := range sn.Hists {
			hists = append(hists, name)
		}
		sort.Strings(hists)
		for _, name := range hists {
			h := sn.Hists[name]
			fmt.Printf("  %-24s count=%d p50=%d p99=%d max=%d (cycles)\n",
				name, h.Count, h.P50, h.P99, h.Max)
		}
	}
	if violations != 0 {
		fmt.Fprintf(os.Stderr, "simtrace: %d exclusion invariant violations\n", violations)
		os.Exit(1)
	}
}
