// Command simfig5 regenerates the paper's Figure 5 on the simulated
// T5440 (4 chips × 64 hardware threads): throughput (acquires/s) versus
// thread count for the GOLL, FOLL, ROLL, KSUH and Solaris-like locks at
// each of the paper's read percentages.
//
// Usage:
//
//	simfig5 [-panel a|b|c|d|e|f|all] [-threads 1,2,...] [-ops N]
//	        [-runs N] [-seed N] [-locks goll,foll,...] [-csv] [-plot]
//
// The default thread list spans 1..256 with the paper's x-axis density;
// output is one table per panel (threads as rows, locks as columns),
// CSV with -csv, or an ASCII log-scale chart with -plot — the fastest
// way to compare curve shapes against the paper. Runs are deterministic
// for a given seed; -runs averages over seed+i per the paper's 3-run
// methodology.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ollock/internal/plot"
	"ollock/internal/sim"
	"ollock/internal/sim/simlock"
)

var panels = map[string]float64{
	"a": 1.00, "b": 0.99, "c": 0.95, "d": 0.80, "e": 0.50, "f": 0.00,
}

var panelOrder = []string{"a", "b", "c", "d", "e", "f"}

func main() {
	panel := flag.String("panel", "all", "panel to regenerate: a (100% reads), b (99%), c (95%), d (80%), e (50%), f (0%), or all")
	threadsFlag := flag.String("threads", "1,2,4,8,16,32,48,64,96,128,192,256", "comma-separated thread counts")
	ops := flag.Int("ops", 200, "acquisitions per simulated thread")
	runs := flag.Int("runs", 1, "runs to average (paper uses 3)")
	seed := flag.Uint64("seed", 42, "base PRNG seed")
	locksFlag := flag.String("locks", "", "comma-separated lock subset (default: the paper's five)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	asPlot := flag.Bool("plot", false, "draw ASCII charts instead of tables")
	flag.Parse()

	threads, err := parseInts(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simfig5:", err)
		os.Exit(2)
	}
	locks := simlock.Figure5Locks()
	if *locksFlag != "" {
		locks = locks[:0]
		for _, name := range strings.Split(*locksFlag, ",") {
			f := simlock.ByName(strings.TrimSpace(name))
			if f == nil {
				fmt.Fprintf(os.Stderr, "simfig5: unknown lock %q\n", name)
				os.Exit(2)
			}
			locks = append(locks, *f)
		}
	}
	var selected []string
	if *panel == "all" {
		selected = panelOrder
	} else if _, ok := panels[*panel]; ok {
		selected = []string{*panel}
	} else {
		fmt.Fprintf(os.Stderr, "simfig5: unknown panel %q\n", *panel)
		os.Exit(2)
	}

	if *csv {
		fmt.Println("panel,read_pct,lock,threads,throughput_acq_per_s")
	}
	for _, p := range selected {
		frac := panels[p]
		// Measure the full panel first (results[lock][threadIdx]).
		results := make([][]float64, len(locks))
		for li, l := range locks {
			results[li] = make([]float64, len(threads))
			for ti, n := range threads {
				var sum float64
				for r := 0; r < *runs; r++ {
					res := simlock.RunExperiment(l, sim.T5440(), n, frac, *ops, *seed+uint64(r)*7919)
					sum += res.Throughput
				}
				results[li][ti] = sum / float64(*runs)
			}
		}
		title := fmt.Sprintf("Figure 5(%s): %.0f%% reads — simulated T5440, %d ops/thread, %d run(s)",
			p, frac*100, *ops, *runs)
		switch {
		case *csv:
			for li, l := range locks {
				for ti, n := range threads {
					fmt.Printf("%s,%.0f,%s,%d,%.6e\n", p, frac*100, l.Name, n, results[li][ti])
				}
			}
		case *asPlot:
			series := make([]plot.Series, len(locks))
			for li, l := range locks {
				xs := make([]float64, len(threads))
				for ti, n := range threads {
					xs[ti] = float64(n)
				}
				series[li] = plot.Series{Name: l.Name, X: xs, Y: results[li]}
			}
			if err := plot.Render(os.Stdout, title, series, 72, 18); err != nil {
				fmt.Fprintln(os.Stderr, "simfig5:", err)
				os.Exit(1)
			}
			fmt.Println()
		default:
			fmt.Println(title)
			fmt.Printf("%-9s", "threads")
			for _, l := range locks {
				fmt.Printf(" %12s", l.Name)
			}
			fmt.Println()
			for ti, n := range threads {
				fmt.Printf("%-9d", n)
				for li := range locks {
					fmt.Printf(" %12.3e", results[li][ti])
				}
				fmt.Println()
			}
			fmt.Println()
		}
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		if v > 256 {
			return nil, fmt.Errorf("thread count %d exceeds the T5440's 256 hardware threads", v)
		}
		out = append(out, v)
	}
	return out, nil
}
