// Command locktest stress-tests the reader-writer locks for exclusion
// violations: goroutines hammer one lock with a random read/write mix
// while every critical section checks the invariant (at most one writer,
// never a writer concurrent with readers, writers keep a two-word
// guarded value consistent).
//
// Usage:
//
//	locktest [-lock goll|foll|roll|...|all] [-threads N] [-ops N]
//	         [-readpct 0..100] [-seed N] [-upgrade]
//
// Exits nonzero if any violation is detected.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ollock/internal/harness"
	"ollock/internal/locksuite"
	"ollock/internal/xrand"
)

func main() {
	lockFlag := flag.String("lock", "all", "lock to test (see -list) or all")
	threads := flag.Int("threads", 16, "concurrent goroutines")
	ops := flag.Int("ops", 50000, "operations per goroutine")
	readPct := flag.Float64("readpct", 90, "percentage of read acquisitions")
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "PRNG seed")
	upgrade := flag.Bool("upgrade", false, "also exercise TryUpgrade/Downgrade on locks that support it")
	latency := flag.Bool("latency", false, "also report per-kind acquisition latency")
	list := flag.Bool("list", false, "list available locks and exit")
	chaosRun := flag.Bool("chaos", false, "run the chaos cancellation torture matrix (every cancellable kind x indicator x wait policy under fault injection) and exit")
	chaosTimeout := flag.Duration("chaos-timeout", 2*time.Minute, "per-cell watchdog for -chaos")
	flag.Parse()

	if *chaosRun {
		chaosMain(*threads, *ops, *seed, *chaosTimeout)
	}
	if *list {
		for _, impl := range locksuite.Locks {
			fmt.Println(impl.Name)
		}
		return
	}
	var impls []locksuite.Impl
	if *lockFlag == "all" {
		impls = locksuite.Locks
	} else {
		for _, name := range strings.Split(*lockFlag, ",") {
			impl := locksuite.ByName(strings.TrimSpace(name))
			if impl == nil {
				fmt.Fprintf(os.Stderr, "locktest: unknown lock %q (use -list)\n", name)
				os.Exit(2)
			}
			impls = append(impls, *impl)
		}
	}

	failed := false
	for _, impl := range impls {
		violations, elapsed := stress(impl, *threads, *ops, *readPct/100, *seed, *upgrade)
		status := "ok"
		if violations != 0 {
			status = fmt.Sprintf("FAILED (%d violations)", violations)
			failed = true
		}
		total := float64(*threads) * float64(*ops)
		fmt.Printf("%-14s %8d goroutines x %d ops (%.0f%% reads): %-28s %.2e acq/s\n",
			impl.Name, *threads, *ops, *readPct, status, total/elapsed.Seconds())
		if *latency {
			lr := harness.RunLatency(harness.Config{
				Impl:         impl,
				Threads:      *threads,
				ReadFraction: *readPct / 100,
				OpsPerThread: *ops / 5,
				Seed:         *seed,
			})
			fmt.Printf("%-14s   latency: read mean %v p50 %v p99 %v max %v | write mean %v p50 %v p99 %v max %v\n",
				"", lr.Read.Mean, lr.Read.P50, lr.Read.P99, lr.Read.Max,
				lr.Write.Mean, lr.Write.P50, lr.Write.P99, lr.Write.Max)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func stress(impl locksuite.Impl, threads, ops int, readFrac float64, seed uint64, upgrade bool) (int64, time.Duration) {
	mk := impl.New(threads)
	var readers, writers atomic.Int32
	var violations atomic.Int64
	var a, b int64 // writer-guarded pair: a == b outside writer sections
	check := func(cond bool) {
		if !cond {
			violations.Add(1)
		}
	}
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := mk()
			u, canUpgrade := p.(locksuite.Upgrader)
			rng := xrand.New(seed + uint64(id)*0x9E3779B9 + 1)
			for i := 0; i < ops; i++ {
				if rng.Bool(readFrac) {
					p.RLock()
					readers.Add(1)
					check(writers.Load() == 0)
					check(a == b)
					if upgrade && canUpgrade && rng.Bool(0.05) && u.TryUpgrade() {
						readers.Add(-1)
						check(writers.Add(1) == 1)
						a++
						b++
						writers.Add(-1)
						if rng.Bool(0.5) {
							u.Downgrade()
							readers.Add(1)
							check(a == b)
							readers.Add(-1)
							p.RUnlock()
						} else {
							p.Unlock()
						}
						continue
					}
					readers.Add(-1)
					p.RUnlock()
				} else {
					p.Lock()
					check(writers.Add(1) == 1)
					check(readers.Load() == 0)
					a++
					check(a == b+1)
					b++
					writers.Add(-1)
					p.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	return violations.Load(), time.Since(start)
}
