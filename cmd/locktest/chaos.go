package main

// The -chaos torture mode: every cancellable lock kind, crossed with
// every read indicator and wait policy the kind accepts, hammered by a
// mixed population of blocking, timed, context-cancelled, and try
// acquirers while a chaos fault injector (ollock.WithChaos) widens the
// race windows at the protocols' linearization points. Each critical
// section checks the reader-writer invariants; after the storm the
// runner proves the lock still works (no lost wakeup), and for the
// ring-pool locks that every abandoned node came back (no leaked pool
// node, no double recycle).

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ollock"
	"ollock/internal/xrand"
)

// chaosCombo is one cell of the torture matrix.
type chaosCombo struct {
	kind ollock.Kind
	ind  ollock.IndicatorKind // "" = kind default
	wait ollock.WaitMode      // "" = kind default
}

// chaosMatrix enumerates the cells: every Cancellable kind, crossed
// with the indicators and wait modes its capabilities admit.
func chaosMatrix() []chaosCombo {
	var out []chaosCombo
	for _, info := range ollock.KindInfos() {
		if !info.Cancellable {
			continue
		}
		inds := []ollock.IndicatorKind{""}
		if info.Indicator {
			inds = ollock.IndicatorKinds()
		}
		waits := []ollock.WaitMode{""}
		if info.Wait {
			waits = ollock.WaitModes()
		}
		for _, ind := range inds {
			for _, w := range waits {
				out = append(out, chaosCombo{kind: info.Kind, ind: ind, wait: w})
			}
		}
	}
	return out
}

func (c chaosCombo) String() string {
	s := string(c.kind)
	if c.ind != "" {
		s += "/" + string(c.ind)
	}
	if c.wait != "" {
		s += "/" + string(c.wait)
	}
	return s
}

// chaosTorture runs the full matrix; it reports whether every cell
// passed. Each cell gets a distinct derived seed so a failure report
// names the exact schedule to replay.
func chaosTorture(threads, ops int, seed uint64, timeout time.Duration) bool {
	ok := true
	for i, c := range chaosMatrix() {
		cellSeed := seed + uint64(i)*0x9E3779B97F4A7C15
		res := runChaosCell(c, threads, ops, cellSeed, timeout)
		status := "ok"
		if res != "" {
			status = "FAILED: " + res
			ok = false
		}
		fmt.Printf("chaos %-24s seed=%-20d %s\n", c, cellSeed, status)
	}
	return ok
}

// poolChecker is the quiescence diagnostic of the ring-pool locks.
type poolChecker interface {
	NodesInUse() int
	Idle() bool
}

// runChaosCell tortures one matrix cell; it returns "" on success or a
// description of the first violation.
func runChaosCell(c chaosCombo, threads, ops int, seed uint64, timeout time.Duration) string {
	opts := []ollock.Option{ollock.WithChaos(seed)}
	if c.ind != "" {
		opts = append(opts, ollock.WithIndicator(c.ind))
	}
	if c.wait != "" {
		opts = append(opts, ollock.WithWait(c.wait))
	}
	info, _ := ollock.InfoOf(c.kind)
	if !info.Instrumented {
		opts = opts[1:] // WithChaos rides the instrumentation seam
	}
	// threads workers plus the post-quiescence prober.
	l, err := ollock.New(c.kind, threads+1, opts...)
	if err != nil {
		return "New: " + err.Error()
	}

	var readers, writers atomic.Int32
	var violations atomic.Int64
	var timeouts, cancels atomic.Int64
	var a, b int64 // writer-guarded pair: a == b outside writer sections
	check := func(cond bool) {
		if !cond {
			violations.Add(1)
		}
	}
	readBody := func() {
		readers.Add(1)
		check(writers.Load() == 0)
		check(a == b)
		readers.Add(-1)
	}
	writeBody := func() {
		check(writers.Add(1) == 1)
		check(readers.Load() == 0)
		a++
		check(a == b+1)
		b++
		writers.Add(-1)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < threads; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := l.NewProc().(ollock.DeadlineProc)
			rng := xrand.New(seed ^ (uint64(id)*0xBF58476D1CE4E5B9 + 1))
			for i := 0; i < ops; i++ {
				// Short, jittered bounds keep a healthy fraction of the
				// timed acquisitions expiring under contention while the
				// rest succeed — both outcomes exercised every run.
				d := time.Duration(1+rng.Intn(50)) * time.Microsecond
				switch draw := rng.Intn(100); {
				case draw < 35:
					p.RLock()
					readBody()
					p.RUnlock()
				case draw < 50:
					p.Lock()
					writeBody()
					p.Unlock()
				case draw < 70:
					if p.RLockFor(d) {
						readBody()
						p.RUnlock()
					} else {
						timeouts.Add(1)
					}
				case draw < 85:
					if p.LockFor(d) {
						writeBody()
						p.Unlock()
					} else {
						timeouts.Add(1)
					}
				case draw < 90:
					ctx, cancel := context.WithTimeout(context.Background(), d)
					if p.RLockCtx(ctx) == nil {
						readBody()
						p.RUnlock()
					} else {
						cancels.Add(1)
					}
					cancel()
				case draw < 95:
					ctx, cancel := context.WithTimeout(context.Background(), d)
					if p.LockCtx(ctx) == nil {
						writeBody()
						p.Unlock()
					} else {
						cancels.Add(1)
					}
					cancel()
				default:
					if p.TryLock() {
						writeBody()
						p.Unlock()
					} else if p.TryRLock() {
						readBody()
						p.RUnlock()
					}
				}
			}
		}(g)
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		return fmt.Sprintf("watchdog: workers stuck after %v (lost wakeup?)", timeout)
	}
	if v := violations.Load(); v != 0 {
		return fmt.Sprintf("%d invariant violations", v)
	}

	// Post-quiescence: the lock must still hand out both modes (a
	// leaked hand-off or double drain would wedge or corrupt here), and
	// the ring-pool locks must have every node back.
	post := make(chan string, 1)
	go func() {
		p := l.NewProc().(ollock.DeadlineProc)
		p.Lock()
		if a != b {
			post <- "guarded pair torn after quiescence"
			p.Unlock()
			return
		}
		p.Unlock()
		p.RLock()
		p.RUnlock()
		post <- ""
	}()
	select {
	case msg := <-post:
		if msg != "" {
			return msg
		}
	case <-time.After(timeout):
		return "post-quiescence acquisition stuck (lock wedged)"
	}
	target := l
	if bw, ok := l.(*ollock.BravoLock); ok {
		target = bw.Base()
	}
	if pc, ok := target.(poolChecker); ok {
		// A quiescent lock holds at most one ring node: the resting
		// reader tail group (1) or nothing after a writer drained the
		// queue (0). More means a leaked abandoned node.
		if n := pc.NodesInUse(); n > 1 {
			return fmt.Sprintf("ring pool: %d nodes in use after quiescence, want <= 1 (leaked node)", n)
		}
		if !pc.Idle() {
			return "lock not idle after quiescence"
		}
	}
	if cnt, ok := ollock.ChaosCountOf(l); ok && cnt == 0 && ops*threads >= 1000 {
		return "chaos injector never fired (seam unplugged?)"
	}
	return ""
}

// chaosMain is the -chaos entry point; it exits the process.
func chaosMain(threads, ops int, seed uint64, timeout time.Duration) {
	if !chaosTorture(threads, ops, seed, timeout) {
		os.Exit(1)
	}
	os.Exit(0)
}
