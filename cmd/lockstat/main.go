// Command lockstat demonstrates the WithStats instrumentation facade:
// it runs a short real-goroutine workload against each instrumented
// lock kind and prints the resulting counter snapshot — the quickest
// way to see which internal paths (C-SNZI tree arrivals, reader-group
// joins, ROLL overtakes, BRAVO bias transitions) a given read/write
// mix actually exercises.
//
// Usage:
//
//	lockstat [-lock goll,roll,...|all] [-indicator csnzi|central|sharded]
//	         [-threads N] [-ops N] [-readpct 0..100] [-seed N] [-json]
//	         [-trace out.json]
//
// The -indicator flag selects the read indicator backing the OLL locks
// (ollock.WithIndicator); every indicator reports through the same
// csnzi.* counter names, so the tables stay comparable across choices.
//
// With -json the full snapshots are emitted as a JSON object keyed by
// kind, in the same shape WithStats publishes through expvar.
//
// With -trace the run is additionally flight-recorded (ollock.WithTrace)
// and the recording is written to the named file in the same JSON shape
// cmd/locktrace records — convert it with "locktrace export" or fold it
// with "locktrace top".
//
// With -prom the final counters of every kind are also written to the
// named file in Prometheus text exposition format (one labeled series
// per kind, the same shape cmd/lockmon serves live) — validate it with
// "lockmon checkfmt".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"ollock"
	"ollock/internal/xrand"
)

// instrumented lists the kinds that carry obs instrumentation, read
// from the kind registry's capability flags.
var instrumented = func() []ollock.Kind {
	var out []ollock.Kind
	for _, info := range ollock.KindInfos() {
		if info.Instrumented {
			out = append(out, info.Kind)
		}
	}
	return out
}()

func main() {
	lockFlag := flag.String("lock", "all", "comma-separated lock kinds, or all instrumented kinds")
	indicator := flag.String("indicator", "csnzi", "read indicator for the OLL locks: csnzi, central or sharded")
	threads := flag.Int("threads", 8, "concurrent goroutines")
	ops := flag.Int("ops", 20000, "acquisitions per goroutine")
	readPct := flag.Float64("readpct", 95, "percentage of read acquisitions")
	seed := flag.Uint64("seed", 42, "PRNG seed")
	asJSON := flag.Bool("json", false, "emit snapshots as JSON instead of tables")
	traceOut := flag.String("trace", "", "also flight-record the run and write the recording (JSON) to this file")
	promOut := flag.String("prom", "", "also write the final counters to this file in Prometheus exposition format")
	flag.Parse()

	var tracer *ollock.Tracer
	if *traceOut != "" {
		tracer = ollock.NewTracer(0)
	}
	var mtr *ollock.Metrics
	if *promOut != "" {
		mtr = ollock.NewMetrics()
	}

	var kinds []ollock.Kind
	if *lockFlag == "all" {
		kinds = instrumented
	} else {
		for _, name := range strings.Split(*lockFlag, ",") {
			kinds = append(kinds, ollock.Kind(strings.TrimSpace(name)))
		}
	}

	snaps := map[string]ollock.Snapshot{}
	for _, kind := range kinds {
		opts := []ollock.Option{
			ollock.WithStats(""),
			ollock.WithIndicator(ollock.IndicatorKind(*indicator)),
		}
		if tracer != nil {
			opts = append(opts, ollock.WithTrace(tracer.Register(string(kind))))
		}
		if mtr != nil {
			opts = append(opts, ollock.WithMetrics(mtr))
		}
		l, err := ollock.New(kind, *threads, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockstat:", err)
			os.Exit(2)
		}
		run(l, *threads, *ops, *readPct/100, *seed)
		sn, ok := ollock.SnapshotOf(l)
		if !ok {
			fmt.Fprintf(os.Stderr, "lockstat: kind %q has no instrumentation\n", kind)
			os.Exit(2)
		}
		snaps[string(kind)] = sn
		if !*asJSON {
			printTable(kind, sn)
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snaps); err != nil {
			fmt.Fprintln(os.Stderr, "lockstat:", err)
			os.Exit(1)
		}
	}
	if mtr != nil {
		mtr.Sample()
		f, err := os.Create(*promOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockstat:", err)
			os.Exit(1)
		}
		if err := mtr.WritePrometheus(f); err != nil {
			fmt.Fprintln(os.Stderr, "lockstat:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lockstat:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "lockstat: wrote Prometheus exposition to %s\n", *promOut)
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockstat:", err)
			os.Exit(1)
		}
		rec := tracer.Record()
		if err := rec.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "lockstat:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "lockstat:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "lockstat: wrote %d trace events to %s\n", len(rec.Events), *traceOut)
	}
}

// run drives the §5.1 workload shape: every goroutine loops over
// acquisitions, choosing read vs. write from a private PRNG.
func run(l ollock.Lock, threads, ops int, readFrac float64, seed uint64) {
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := l.NewProc()
			rng := xrand.New(seed + uint64(id)*0x9E3779B9 + 1)
			for i := 0; i < ops; i++ {
				if rng.Bool(readFrac) {
					p.RLock()
					p.RUnlock()
				} else {
					p.Lock()
					p.Unlock()
				}
			}
		}(t)
	}
	wg.Wait()
}

func printTable(kind ollock.Kind, sn ollock.Snapshot) {
	fmt.Printf("%s\n", kind)
	for _, name := range sn.Names() {
		fmt.Printf("  %-24s %12d\n", name, sn.Counters[name])
	}
	hists := make([]string, 0, len(sn.Hists))
	for name := range sn.Hists {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	for _, name := range hists {
		h := sn.Hists[name]
		fmt.Printf("  %-24s count=%d p50=%dns p99=%dns max=%dns\n",
			name, h.Count, h.P50, h.P99, h.Max)
	}
	fmt.Println()
}
