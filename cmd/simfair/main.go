// Command simfair measures the fairness side of the Figure 5 tradeoff
// on the simulated T5440: per-kind acquisition latency (cycles from
// acquire call to ownership) for each lock under a read-heavy mix.
//
// The paper evaluates throughput only; this companion experiment
// quantifies what each policy costs the minority writers — FIFO (FOLL)
// bounds writer latency, reader preference (ROLL) trades it away, and
// the Solaris policy (GOLL) sits between.
//
// Usage:
//
//	simfair [-threads 1,8,64,...] [-readpct 99] [-ops N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ollock/internal/sim"
	"ollock/internal/sim/simlock"
)

func main() {
	threadsFlag := flag.String("threads", "8,64,192", "comma-separated thread counts")
	readPct := flag.Float64("readpct", 99, "percentage of read acquisitions")
	ops := flag.Int("ops", 200, "acquisitions per simulated thread")
	seed := flag.Uint64("seed", 42, "PRNG seed")
	flag.Parse()

	threads, err := parseInts(*threadsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simfair:", err)
		os.Exit(2)
	}

	fmt.Printf("Acquisition latency (cycles), simulated T5440, %.0f%% reads\n\n", *readPct)
	for _, n := range threads {
		fmt.Printf("threads = %d\n", n)
		fmt.Printf("  %-9s %12s %12s %12s %12s %12s %12s %12s\n",
			"lock", "read mean", "read p99", "read max", "write mean", "write p99", "write max", "acq/s")
		for _, f := range simlock.Figure5Locks() {
			r := simlock.RunLatencyExperiment(f, sim.T5440(), n, *readPct/100, *ops, *seed)
			fmt.Printf("  %-9s %12.0f %12d %12d %12.0f %12d %12d %12.3e\n",
				f.Name, r.Read.Mean, r.Read.P99, r.Read.Max,
				r.Write.Mean, r.Write.P99, r.Write.Max, r.Throughput)
		}
		fmt.Println()
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 || v > 256 {
			return nil, fmt.Errorf("bad thread count %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
