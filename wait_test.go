package ollock_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"ollock"
)

// waitKinds are the lock kinds that accept a wait policy.
var waitKinds = []ollock.Kind{
	ollock.GOLL, ollock.FOLL, ollock.ROLL,
	ollock.KindBravoGOLL, ollock.KindBravoROLL, ollock.Central,
}

// TestWithWaitAllCombos drives every (kind, wait mode) pair through a
// mixed read/write workload: the lock must stay correct whether waiters
// spin, park on channels, or poll waiting-array slots.
func TestWithWaitAllCombos(t *testing.T) {
	for _, kind := range waitKinds {
		for _, mode := range ollock.WaitModes() {
			kind, mode := kind, mode
			t.Run(string(kind)+"/"+string(mode), func(t *testing.T) {
				t.Parallel()
				const goroutines, iters = 6, 300
				l, err := ollock.New(kind, goroutines, ollock.WithWait(mode))
				if err != nil {
					t.Fatal(err)
				}
				counter := 0
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						p := l.NewProc()
						for i := 0; i < iters; i++ {
							if i%5 == 0 {
								p.Lock()
								counter++
								p.Unlock()
							} else {
								p.RLock()
								_ = counter
								p.RUnlock()
							}
						}
					}()
				}
				wg.Wait()
				if counter != goroutines*iters/5 {
					t.Fatalf("counter = %d, want %d", counter, goroutines*iters/5)
				}
			})
		}
	}
}

func TestWithWaitRejections(t *testing.T) {
	if _, err := ollock.New(ollock.GOLL, 1, ollock.WithWait("no-such-mode")); err == nil {
		t.Fatal("expected error for unknown wait mode")
	}
	if _, err := ollock.New(ollock.KSUH, 1, ollock.WithWait(ollock.WaitAdaptive)); err == nil {
		t.Fatal("expected error for wait policy on a fixed-waiting kind")
	}
	// The default mode is accepted everywhere (it is a no-op).
	if _, err := ollock.New(ollock.KSUH, 1, ollock.WithWait(ollock.WaitSpin)); err != nil {
		t.Fatal(err)
	}
}

// TestWithWaitComposesWithIndicator exercises the deepest stack the
// facade can build: BRAVO bias over an OLL lock over a sharded
// indicator, all waiting through one shared policy.
func TestWithWaitComposesWithIndicator(t *testing.T) {
	for _, mode := range []ollock.WaitMode{ollock.WaitAdaptive, ollock.WaitArray} {
		mode := mode
		t.Run(string(mode), func(t *testing.T) {
			l, err := ollock.New(ollock.GOLL, 4,
				ollock.WithWait(mode), ollock.WithBias(), ollock.WithIndicator(ollock.IndicatorSharded))
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					p := l.NewProc()
					for i := 0; i < 200; i++ {
						if i%7 == 0 {
							p.Lock()
							p.Unlock()
						} else {
							p.RLock()
							p.RUnlock()
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestWithWaitParkCounters checks the observable difference between the
// modes: under WaitAdaptive a reader blocked behind a long write must
// eventually park (park.park/park.unpark count), and under the default
// spin mode the park.* names must not exist at all, keeping the
// historical counter set intact.
func TestWithWaitParkCounters(t *testing.T) {
	l, err := ollock.New(ollock.GOLL, 2, ollock.WithWait(ollock.WaitAdaptive), ollock.WithStats(""))
	if err != nil {
		t.Fatal(err)
	}
	w := l.NewProc()
	w.Lock()
	done := make(chan struct{})
	go func() {
		r := l.NewProc()
		r.RLock()
		r.RUnlock()
		close(done)
	}()
	// Long enough for the reader to burn its spin and yield budgets and
	// park; the ladder reaches the park step within microseconds, so
	// this sleep is generous, not load-bearing.
	time.Sleep(50 * time.Millisecond)
	w.Unlock()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("reader never granted")
	}
	sn, ok := ollock.SnapshotOf(l)
	if !ok {
		t.Fatal("instrumented lock has no snapshot")
	}
	if sn.Counters["park.park"] == 0 || sn.Counters["park.unpark"] == 0 {
		t.Fatalf("reader blocked for 50ms never parked: park.park=%d park.unpark=%d",
			sn.Counters["park.park"], sn.Counters["park.unpark"])
	}

	spin := ollock.MustNew(ollock.GOLL, 2, ollock.WithStats(""))
	p := spin.NewProc()
	p.Lock()
	p.Unlock()
	sn, _ = ollock.SnapshotOf(spin)
	for name := range sn.Counters {
		if len(name) >= 5 && name[:5] == "park." {
			t.Fatalf("default spin lock exposes %s; park scope must be opt-in", name)
		}
	}
}

// TestWithWaitOversubscribed runs a 4x-GOMAXPROCS read-heavy workload
// under each mode — the regime the parking modes exist for. This is a
// liveness/correctness check, not a benchmark: it must finish.
func TestWithWaitOversubscribed(t *testing.T) {
	if testing.Short() {
		t.Skip("oversubscription soak skipped in -short")
	}
	goroutines := 4 * runtime.GOMAXPROCS(0)
	for _, mode := range ollock.WaitModes() {
		mode := mode
		t.Run(string(mode), func(t *testing.T) {
			l := ollock.MustNew(ollock.ROLL, goroutines, ollock.WithWait(mode))
			counter := 0
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					p := l.NewProc()
					for i := 0; i < 200; i++ {
						if i%20 == 0 {
							p.Lock()
							counter++
							p.Unlock()
						} else {
							p.RLock()
							_ = counter
							p.RUnlock()
						}
					}
				}()
			}
			wg.Wait()
			if counter != goroutines*200/20 {
				t.Fatalf("counter = %d, want %d", counter, goroutines*200/20)
			}
		})
	}
}
