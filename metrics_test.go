package ollock_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ollock"
	"ollock/internal/metrics"
)

// churn runs a short mixed workload on l so the counters move.
func churn(l ollock.Lock, procs, rounds int) {
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		p := l.NewProc()
		write := i == procs-1
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if write {
					p.Lock()
					p.Unlock()
				} else {
					p.RLock()
					p.RUnlock()
				}
			}
		}()
	}
	wg.Wait()
}

// TestWithMetricsEndToEnd drives the full pipeline through the facade:
// two locks registered on one pipeline, a workload, a manual sample,
// and a scrape through the HTTP handler. The exposition must validate
// and carry both locks under their dedup-suffixed keys.
func TestWithMetricsEndToEnd(t *testing.T) {
	m := ollock.NewMetrics(ollock.MetricsPeriod(10 * time.Millisecond))
	g, err := ollock.New(ollock.GOLL, 4, ollock.WithMetrics(m), ollock.WithStats("app"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := ollock.New(ollock.FOLL, 4, ollock.WithMetrics(m), ollock.WithStats("app"))
	if err != nil {
		t.Fatal(err)
	}
	churn(g, 4, 50)
	churn(f, 4, 50)
	m.Sample()

	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("scrape content type = %q", ct)
	}
	if err := metrics.ValidateExposition(body); err != nil {
		t.Fatalf("scrape does not validate: %v\n%s", err, body)
	}
	for _, want := range []string{
		`ollock_csnzi_arrive_root_total{lock="app"}`,
		`ollock_goll_write_wait_ns_count{lock="app"}`,
		`ollock_foll_write_wait_ns_count{lock="app#2"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// The same endpoint serves the JSON time series on content
	// negotiation.
	req, _ := http.NewRequest("GET", srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	jbody, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Series []struct {
			Lock string `json:"lock"`
		} `json:"series"`
	}
	if err := json.Unmarshal(jbody, &doc); err != nil {
		t.Fatalf("JSON scrape: %v\n%s", err, jbody)
	}
	if len(doc.Series) != 2 {
		t.Fatalf("JSON series count = %d, want 2", len(doc.Series))
	}
}

// TestMetricsDiagnoseHealthy: a light uncontended workload produces no
// findings under default thresholds.
func TestMetricsDiagnoseHealthy(t *testing.T) {
	m := ollock.NewMetrics()
	l, err := ollock.New(ollock.GOLL, 2, ollock.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	m.Sample()
	churn(l, 2, 20)
	if findings := m.Diagnose(0); len(findings) != 0 {
		t.Fatalf("healthy workload produced findings:\n%s", ollock.DoctorReport(findings))
	}
}

// TestMetricsBackgroundSampler: Start/Stop actually run the ticker and
// the rings accumulate points without racing the workload (this test is
// most interesting under -race).
func TestMetricsBackgroundSampler(t *testing.T) {
	m := ollock.NewMetrics(ollock.MetricsPeriod(time.Millisecond), ollock.MetricsRing(16))
	l, err := ollock.New(ollock.ROLL, 4, ollock.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	churn(l, 4, 200)
	deadline := time.Now().Add(2 * time.Second)
	for m.Samples() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	m.Stop()
	if got := m.Samples(); got < 3 {
		t.Fatalf("background sampler took %d samples, want >= 3", got)
	}
	m.Stop() // idempotent
}

// TestWithMetricsImpliesStats: WithMetrics alone instruments the lock.
func TestWithMetricsImpliesStats(t *testing.T) {
	m := ollock.NewMetrics()
	l, err := ollock.New(ollock.GOLL, 2, ollock.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ollock.SnapshotOf(l); !ok {
		t.Fatal("WithMetrics did not imply WithStats")
	}
}

// TestSamplerOverheadBounded pins the "sampling is pull-only" claim:
// a 100%-read workload with a 100ms sampler attached must stay within
// a few percent of the same workload without one. The sampler reads
// the lock's striped counters; the lock never writes anything for the
// sampler's benefit, so the only possible cost is cache traffic from
// the periodic sweep. The bound here is 10% — generous against CI
// noise; the typical measured cost is well under 2%.
func TestSamplerOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped with -short")
	}
	readOps := func(withSampler bool) float64 {
		var opts []ollock.Option
		var m *ollock.Metrics
		opts = append(opts, ollock.WithStats(""))
		if withSampler {
			m = ollock.NewMetrics(ollock.MetricsPeriod(100 * time.Millisecond))
			opts = append(opts, ollock.WithMetrics(m))
		}
		l, err := ollock.New(ollock.GOLL, 8, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			m.Start()
			defer m.Stop()
		}
		const procs = 4
		var total atomic.Uint64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for i := 0; i < procs; i++ {
			p := l.NewProc()
			wg.Add(1)
			go func() {
				defer wg.Done()
				var n uint64
				for {
					select {
					case <-stop:
						total.Add(n)
						return
					default:
					}
					p.RLock()
					p.RUnlock()
					n++
				}
			}()
		}
		time.Sleep(time.Second)
		close(stop)
		wg.Wait()
		return float64(total.Load())
	}
	// Interleave A/B pairs and keep the best pair: a scheduler hiccup
	// in one interval (common on small CI machines) shows up as one bad
	// pair, while a real sampler cost would depress every pair.
	best := 0.0
	for i := 0; i < 3; i++ {
		ratio := readOps(true) / readOps(false)
		t.Logf("pair %d: read ops with sampler / without = %.4f", i, ratio)
		if ratio > best {
			best = ratio
		}
	}
	if best < 0.90 {
		t.Fatalf("100ms sampler cost the read path %.1f%% in every run (want < 10%%)", (1-best)*100)
	}
}
