package ollock_test

import (
	"testing"

	"ollock"
)

// The read path of the scalable locks must not allocate: an allocation
// per acquisition would dwarf the coherence traffic these algorithms
// exist to avoid. AllocsPerRun pins that property so a refactor cannot
// silently regress it.

func TestReadPathZeroAllocs(t *testing.T) {
	for _, kind := range []ollock.Kind{ollock.GOLL, ollock.FOLL, ollock.ROLL} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			p := ollock.MustNew(kind, 4).NewProc()
			if n := testing.AllocsPerRun(200, func() {
				p.RLock()
				p.RUnlock()
			}); n != 0 {
				t.Fatalf("RLock/RUnlock allocates %.1f times per op, want 0", n)
			}
		})
	}
}

func TestBravoFastPathZeroAllocs(t *testing.T) {
	for _, kind := range []ollock.Kind{ollock.KindBravoGOLL, ollock.KindBravoROLL} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			p := ollock.MustNew(kind, 4).NewProc().(*ollock.BravoProc)
			// Confirm the measurement exercises the biased fast path, not
			// the underlying lock's read path.
			p.RLock()
			hit := p.ReadFastPath()
			p.RUnlock()
			if !hit {
				t.Fatal("biased read did not take the fast path")
			}
			if n := testing.AllocsPerRun(200, func() {
				p.RLock()
				p.RUnlock()
			}); n != 0 {
				t.Fatalf("biased RLock/RUnlock allocates %.1f times per op, want 0", n)
			}
		})
	}
}
