package ollock_test

import (
	"testing"
	"time"

	"ollock"
)

// Guards for the zero-overhead-off contract of the WithStats
// instrumentation: attaching a stats block must not put allocations on
// the read path, and the striped counters must not meaningfully slow a
// read-dominated workload. The stats-off side (no block at all) is
// covered by alloc_test.go; these tests pin the stats-on side.

// TestUninstrumentedPathsZeroAllocs sweeps every kind the registry
// marks Instrumented and pins the off side of the contract after the
// lockcore refactor: with no stats block, no tracer, and no wait
// policy attached, the nil-guarded lockcore helpers must keep both
// the read and the write fast path allocation-free.
func TestUninstrumentedPathsZeroAllocs(t *testing.T) {
	for _, info := range ollock.KindInfos() {
		if !info.Instrumented {
			continue
		}
		info := info
		t.Run(string(info.Kind), func(t *testing.T) {
			p := ollock.MustNew(info.Kind, 4).NewProc()
			if n := testing.AllocsPerRun(200, func() {
				p.RLock()
				p.RUnlock()
			}); n != 0 {
				t.Fatalf("uninstrumented RLock/RUnlock allocates %.1f times per op, want 0", n)
			}
			if n := testing.AllocsPerRun(200, func() {
				p.Lock()
				p.Unlock()
			}); n != 0 {
				t.Fatalf("uninstrumented Lock/Unlock allocates %.1f times per op, want 0", n)
			}
		})
	}
}

func TestReadPathZeroAllocsWithStats(t *testing.T) {
	for _, kind := range []ollock.Kind{ollock.GOLL, ollock.FOLL, ollock.ROLL} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			l := ollock.MustNew(kind, 4, ollock.WithStats(""))
			p := l.NewProc()
			if n := testing.AllocsPerRun(200, func() {
				p.RLock()
				p.RUnlock()
			}); n != 0 {
				t.Fatalf("instrumented RLock/RUnlock allocates %.1f times per op, want 0", n)
			}
			if sn, ok := ollock.SnapshotOf(l); !ok || sn.Counters["csnzi.arrive.root"]+sn.Counters["csnzi.arrive.tree"] == 0 {
				t.Fatalf("instrumentation did not count the arrivals (snapshot %v, ok=%v)", sn.Counters, ok)
			}
		})
	}
}

func TestBravoFastPathZeroAllocsWithStats(t *testing.T) {
	for _, kind := range []ollock.Kind{ollock.KindBravoGOLL, ollock.KindBravoROLL} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			l := ollock.MustNew(kind, 4, ollock.WithStats(""))
			p := l.NewProc().(*ollock.BravoProc)
			p.RLock()
			hit := p.ReadFastPath()
			p.RUnlock()
			if !hit {
				t.Fatal("biased read did not take the fast path")
			}
			if n := testing.AllocsPerRun(200, func() {
				p.RLock()
				p.RUnlock()
			}); n != 0 {
				t.Fatalf("instrumented biased RLock/RUnlock allocates %.1f times per op, want 0", n)
			}
			if sn, ok := ollock.SnapshotOf(l); !ok || sn.Counters["bravo.read.fast"] == 0 {
				t.Fatalf("instrumentation did not count the fast reads (snapshot %v, ok=%v)", sn.Counters, ok)
			}
		})
	}
}

// TestReadPathZeroAllocsWithTrace pins the trace-on side of the
// flight recorder's zero-overhead-off contract: events land in
// preallocated per-proc rings, so even with WithTrace attached the
// read path must not allocate.
func TestReadPathZeroAllocsWithTrace(t *testing.T) {
	for _, kind := range []ollock.Kind{ollock.GOLL, ollock.FOLL, ollock.ROLL, ollock.KindBravoGOLL, ollock.KindBravoROLL} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			tracer := ollock.NewTracer(1024)
			l := ollock.MustNew(kind, 4, ollock.WithTrace(tracer.Register(string(kind))))
			p := l.NewProc()
			if n := testing.AllocsPerRun(200, func() {
				p.RLock()
				p.RUnlock()
			}); n != 0 {
				t.Fatalf("traced RLock/RUnlock allocates %.1f times per op, want 0", n)
			}
			evs, _, err := tracer.Record().Decode()
			if err != nil {
				t.Fatal(err)
			}
			if len(evs) == 0 {
				t.Fatal("flight recorder captured no events")
			}
		})
	}
}

// readThroughput measures single-proc read acquisitions per
// nanosecond-ish unit: ops over a monotonic-clock interval is noisy in
// CI, so the guard below compares best-of trials with slack instead of
// asserting a tight bound.
func readThroughput(b *testing.B, kind ollock.Kind, opts ...ollock.Option) {
	l := ollock.MustNew(kind, 4, opts...)
	p := l.NewProc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RLock()
		p.RUnlock()
	}
}

// BenchmarkReadPathStats makes the stats-on/off read-path delta
// visible in `go test -bench`: compare stats=off with stats=on per
// kind (acceptance: on within 15% of off at 100% reads).
func BenchmarkReadPathStats(b *testing.B) {
	for _, kind := range []ollock.Kind{ollock.GOLL, ollock.FOLL, ollock.ROLL, ollock.KindBravoGOLL, ollock.KindBravoROLL} {
		kind := kind
		b.Run(string(kind)+"/stats=off", func(b *testing.B) { readThroughput(b, kind) })
		b.Run(string(kind)+"/stats=on", func(b *testing.B) { readThroughput(b, kind, ollock.WithStats("")) })
	}
}

// BenchmarkReadPathTrace is the flight-recorder counterpart: trace=off
// is the nil-guarded branch (acceptance: ≤2% delta vs. a bare lock),
// trace=on pays two ring puts (4 sequentially-consistent stores each,
// the price of tear-free live snapshots) plus three clock reads per
// acquisition — roughly 200ns on a ~30ns bare fast path. Real
// workloads with non-empty critical sections amortize that; this
// benchmark shows the worst case.
func BenchmarkReadPathTrace(b *testing.B) {
	for _, kind := range []ollock.Kind{ollock.GOLL, ollock.FOLL, ollock.ROLL, ollock.KindBravoGOLL, ollock.KindBravoROLL} {
		kind := kind
		b.Run(string(kind)+"/trace=off", func(b *testing.B) { readThroughput(b, kind) })
		b.Run(string(kind)+"/trace=on", func(b *testing.B) {
			tracer := ollock.NewTracer(4096)
			readThroughput(b, kind, ollock.WithTrace(tracer.Register(string(kind))))
		})
	}
}

// TestStatsReadOverheadBounded is the noise-tolerant in-test version
// of the benchmark delta: on an uncontended 100%-read loop, the
// instrumented lock must reach at least 85% of the uninstrumented
// throughput. Best-of-trials on both sides (with whole-test retries)
// absorbs scheduler noise; a genuine hot-path regression — an
// allocation, a shared-line counter — fails by far more than 15%.
func TestStatsReadOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard, skipped with -short")
	}
	const ops = 200_000
	const trials = 5
	measure := func(opts ...ollock.Option) float64 {
		best := 0.0
		for trial := 0; trial < trials; trial++ {
			p := ollock.MustNew(ollock.ROLL, 4, opts...).NewProc()
			start := time.Now()
			for i := 0; i < ops; i++ {
				p.RLock()
				p.RUnlock()
			}
			if rate := float64(ops) / float64(time.Since(start)); rate > best {
				best = rate
			}
		}
		return best
	}
	for attempt := 0; ; attempt++ {
		off := measure()
		on := measure(ollock.WithStats(""))
		if on >= 0.85*off {
			return
		}
		if attempt == 2 {
			t.Fatalf("instrumented read path at %.0f%% of uninstrumented throughput, want >= 85%%", 100*on/off)
		}
	}
}

// TestTraceReadOverheadBounded is the flight-recorder analogue of
// TestStatsReadOverheadBounded, same best-of-trials shape. The traced
// fast path costs ~200ns/op on top of a ~30ns bare path (two ring
// puts of 4 seq-cst stores each + three clock reads), which lands the
// ratio around 14-16% of untraced throughput on an empty critical
// section. The 8% floor is a tripwire with 2x margin: doubling the
// emit cost (an accidental allocation, a shared mutex, a syscall on
// the path) drops the ratio below it, while CI scheduler noise does
// not.
func TestTraceReadOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard, skipped with -short")
	}
	const ops = 200_000
	const trials = 5
	measure := func(opts ...ollock.Option) float64 {
		best := 0.0
		for trial := 0; trial < trials; trial++ {
			p := ollock.MustNew(ollock.GOLL, 4, opts...).NewProc()
			start := time.Now()
			for i := 0; i < ops; i++ {
				p.RLock()
				p.RUnlock()
			}
			if rate := float64(ops) / float64(time.Since(start)); rate > best {
				best = rate
			}
		}
		return best
	}
	for attempt := 0; ; attempt++ {
		off := measure()
		tracer := ollock.NewTracer(4096)
		on := measure(ollock.WithTrace(tracer.Register("goll")))
		if on >= 0.08*off {
			return
		}
		if attempt == 2 {
			t.Fatalf("traced read path at %.0f%% of untraced throughput, want >= 8%%", 100*on/off)
		}
	}
}

// TestWaitPathZeroAllocs pins the wait-policy side of the
// zero-overhead-off contract: the spin policy is the legacy code path
// and must stay allocation-free, and the adaptive/array policies only
// pay their allocations (the park channel, the array slot key) when a
// wait actually escalates — an uncontended acquisition never gets
// there, so it too must be 0 allocs/op in every mode.
func TestWaitPathZeroAllocs(t *testing.T) {
	for _, kind := range []ollock.Kind{ollock.GOLL, ollock.FOLL, ollock.ROLL} {
		for _, mode := range ollock.WaitModes() {
			kind, mode := kind, mode
			t.Run(string(kind)+"/"+string(mode), func(t *testing.T) {
				l := ollock.MustNew(kind, 4, ollock.WithWait(mode), ollock.WithStats(""))
				p := l.NewProc()
				if n := testing.AllocsPerRun(200, func() {
					p.RLock()
					p.RUnlock()
				}); n != 0 {
					t.Fatalf("uncontended RLock/RUnlock under %s allocates %.1f times per op, want 0", mode, n)
				}
				if n := testing.AllocsPerRun(200, func() {
					p.Lock()
					p.Unlock()
				}); n != 0 {
					t.Fatalf("uncontended Lock/Unlock under %s allocates %.1f times per op, want 0", mode, n)
				}
			})
		}
	}
}

// TestProfileMissPathZeroAllocs pins the sampled-miss side of the
// profiler's zero-overhead-off contract: with WithProfile attached but
// the election counter never firing (an astronomically high rate),
// every acquisition pays exactly the pacer increment-and-compare —
// which must not allocate on either the read or the write path.
func TestProfileMissPathZeroAllocs(t *testing.T) {
	for _, kind := range []ollock.Kind{ollock.GOLL, ollock.FOLL, ollock.ROLL, ollock.KindBravoGOLL, ollock.KindBravoROLL} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			prof := ollock.NewProfiler(1 << 30)
			l := ollock.MustNew(kind, 4, ollock.WithProfile(prof.Register(string(kind))))
			p := l.NewProc()
			if n := testing.AllocsPerRun(200, func() {
				p.RLock()
				p.RUnlock()
			}); n != 0 {
				t.Fatalf("profiled (miss path) RLock/RUnlock allocates %.1f times per op, want 0", n)
			}
			if n := testing.AllocsPerRun(200, func() {
				p.Lock()
				p.Unlock()
			}); n != 0 {
				t.Fatalf("profiled (miss path) Lock/Unlock allocates %.1f times per op, want 0", n)
			}
		})
	}
}

// TestProfileSampledPathZeroAllocs pins the elected-sample path: even
// when every acquisition is sampled (rate 1), the capture uses a
// fixed-size PC array and the table's preallocated records, so the
// profiled fast path stays allocation-free end to end.
func TestProfileSampledPathZeroAllocs(t *testing.T) {
	for _, kind := range []ollock.Kind{ollock.GOLL, ollock.FOLL, ollock.ROLL} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			prof := ollock.NewProfiler(1)
			l := ollock.MustNew(kind, 4, ollock.WithProfile(prof.Register(string(kind))))
			p := l.NewProc()
			if n := testing.AllocsPerRun(200, func() {
				p.RLock()
				p.RUnlock()
			}); n != 0 {
				t.Fatalf("fully sampled RLock/RUnlock allocates %.1f times per op, want 0", n)
			}
			if n := testing.AllocsPerRun(200, func() {
				p.Lock()
				p.Unlock()
			}); n != 0 {
				t.Fatalf("fully sampled Lock/Unlock allocates %.1f times per op, want 0", n)
			}
			if len(prof.Profile().Records) == 0 {
				t.Fatal("rate-1 profiling recorded nothing")
			}
		})
	}
}

// TestProfileMissOverheadBounded is the profiler throughput tripwire,
// same best-of-trials shape as TestStatsReadOverheadBounded: with the
// pacer never electing, the profiled read path must reach at least 85%
// of the unprofiled throughput — the miss path is one increment and
// one compare, and anything heavier (a clock read, a stack walk, a
// table probe on the un-elected path) fails by far more than 15%.
func TestProfileMissOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard, skipped with -short")
	}
	const ops = 200_000
	const trials = 5
	measure := func(opts ...ollock.Option) float64 {
		best := 0.0
		for trial := 0; trial < trials; trial++ {
			p := ollock.MustNew(ollock.ROLL, 4, opts...).NewProc()
			start := time.Now()
			for i := 0; i < ops; i++ {
				p.RLock()
				p.RUnlock()
			}
			if rate := float64(ops) / float64(time.Since(start)); rate > best {
				best = rate
			}
		}
		return best
	}
	for attempt := 0; ; attempt++ {
		off := measure()
		prof := ollock.NewProfiler(1 << 30)
		on := measure(ollock.WithProfile(prof.Register("roll")))
		if on >= 0.85*off {
			return
		}
		if attempt == 2 {
			t.Fatalf("profiled (miss path) read path at %.0f%% of unprofiled throughput, want >= 85%%", 100*on/off)
		}
	}
}

// BenchmarkReadPathProfile makes the profile-off/miss/sampled deltas
// visible in `go test -bench`: off is the nil-guarded branch, miss
// pays the pacer, sampled pays the stack walk and table merge.
func BenchmarkReadPathProfile(b *testing.B) {
	for _, kind := range []ollock.Kind{ollock.GOLL, ollock.ROLL} {
		kind := kind
		b.Run(string(kind)+"/profile=off", func(b *testing.B) { readThroughput(b, kind) })
		b.Run(string(kind)+"/profile=miss", func(b *testing.B) {
			prof := ollock.NewProfiler(1 << 30)
			readThroughput(b, kind, ollock.WithProfile(prof.Register(string(kind))))
		})
		b.Run(string(kind)+"/profile=sampled", func(b *testing.B) {
			prof := ollock.NewProfiler(1)
			readThroughput(b, kind, ollock.WithProfile(prof.Register(string(kind))))
		})
	}
}

// TestDeadlinePathZeroAllocs pins the uncontended timed acquisition:
// the deadline plumbing defers its only allocation (the park timer) to
// the park path, so an RLockFor/LockFor that succeeds without waiting
// must be allocation-free — with and without stats attached — for every
// cancellable kind.
func TestDeadlinePathZeroAllocs(t *testing.T) {
	for _, info := range ollock.KindInfos() {
		if !info.Cancellable {
			continue
		}
		info := info
		t.Run(string(info.Kind), func(t *testing.T) {
			for _, opts := range [][]ollock.Option{nil, {ollock.WithStats("")}} {
				p := ollock.MustNew(info.Kind, 4, opts...).NewProc().(ollock.DeadlineProc)
				if n := testing.AllocsPerRun(200, func() {
					if !p.RLockFor(time.Hour) {
						t.Fatal("uncontended RLockFor failed")
					}
					p.RUnlock()
				}); n != 0 {
					t.Fatalf("uncontended RLockFor allocates %.1f times per op, want 0", n)
				}
				if n := testing.AllocsPerRun(200, func() {
					if !p.LockFor(time.Hour) {
						t.Fatal("uncontended LockFor failed")
					}
					p.Unlock()
				}); n != 0 {
					t.Fatalf("uncontended LockFor allocates %.1f times per op, want 0", n)
				}
			}
		})
	}
}

// TestDeadlineReadOverheadBounded is the deadline-plumbing throughput
// tripwire, same best-of-trials shape as TestStatsReadOverheadBounded:
// an uncontended timed read (far deadline, never expires) must reach at
// least 85% of the untimed read throughput. The timed path adds one
// clock read at entry and strided expiry checks while spinning; putting
// per-probe time.Now, a timer, or an allocation on it fails by far more
// than 15%.
func TestDeadlineReadOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard, skipped with -short")
	}
	const ops = 200_000
	const trials = 5
	measure := func(timed bool) float64 {
		best := 0.0
		for trial := 0; trial < trials; trial++ {
			p := ollock.MustNew(ollock.GOLL, 4).NewProc().(ollock.DeadlineProc)
			start := time.Now()
			if timed {
				for i := 0; i < ops; i++ {
					p.RLockFor(time.Hour)
					p.RUnlock()
				}
			} else {
				for i := 0; i < ops; i++ {
					p.RLock()
					p.RUnlock()
				}
			}
			if rate := float64(ops) / float64(time.Since(start)); rate > best {
				best = rate
			}
		}
		return best
	}
	for attempt := 0; ; attempt++ {
		plain := measure(false)
		timed := measure(true)
		if timed >= 0.85*plain {
			return
		}
		if attempt == 2 {
			t.Fatalf("timed read path at %.0f%% of untimed throughput, want >= 85%%", 100*timed/plain)
		}
	}
}

// TestWaitOverheadBounded is the wait-policy throughput tripwire, same
// best-of-trials shape as TestStatsReadOverheadBounded: on an
// uncontended 100%-read loop the adaptive policy must reach at least
// 85% of the spin policy's throughput — the non-parking fast path is
// one mode check away from the legacy spin, and anything that puts
// parking machinery (a channel probe, a time read, an extra atomic) on
// the un-waited path fails by far more than 15%.
func TestWaitOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard, skipped with -short")
	}
	const ops = 200_000
	const trials = 5
	measure := func(mode ollock.WaitMode) float64 {
		best := 0.0
		for trial := 0; trial < trials; trial++ {
			p := ollock.MustNew(ollock.ROLL, 4, ollock.WithWait(mode)).NewProc()
			start := time.Now()
			for i := 0; i < ops; i++ {
				p.RLock()
				p.RUnlock()
			}
			if rate := float64(ops) / float64(time.Since(start)); rate > best {
				best = rate
			}
		}
		return best
	}
	for attempt := 0; ; attempt++ {
		spin := measure(ollock.WaitSpin)
		adaptive := measure(ollock.WaitAdaptive)
		if adaptive >= 0.85*spin {
			return
		}
		if attempt == 2 {
			t.Fatalf("adaptive read path at %.0f%% of spin throughput, want >= 85%%", 100*adaptive/spin)
		}
	}
}
