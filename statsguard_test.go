package ollock_test

import (
	"testing"
	"time"

	"ollock"
)

// Guards for the zero-overhead-off contract of the WithStats
// instrumentation: attaching a stats block must not put allocations on
// the read path, and the striped counters must not meaningfully slow a
// read-dominated workload. The stats-off side (no block at all) is
// covered by alloc_test.go; these tests pin the stats-on side.

func TestReadPathZeroAllocsWithStats(t *testing.T) {
	for _, kind := range []ollock.Kind{ollock.GOLL, ollock.FOLL, ollock.ROLL} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			l := ollock.MustNew(kind, 4, ollock.WithStats(""))
			p := l.NewProc()
			if n := testing.AllocsPerRun(200, func() {
				p.RLock()
				p.RUnlock()
			}); n != 0 {
				t.Fatalf("instrumented RLock/RUnlock allocates %.1f times per op, want 0", n)
			}
			if sn, ok := ollock.SnapshotOf(l); !ok || sn.Counters["csnzi.arrive.root"]+sn.Counters["csnzi.arrive.tree"] == 0 {
				t.Fatalf("instrumentation did not count the arrivals (snapshot %v, ok=%v)", sn.Counters, ok)
			}
		})
	}
}

func TestBravoFastPathZeroAllocsWithStats(t *testing.T) {
	for _, kind := range []ollock.Kind{ollock.KindBravoGOLL, ollock.KindBravoROLL} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			l := ollock.MustNew(kind, 4, ollock.WithStats(""))
			p := l.NewProc().(*ollock.BravoProc)
			p.RLock()
			hit := p.ReadFastPath()
			p.RUnlock()
			if !hit {
				t.Fatal("biased read did not take the fast path")
			}
			if n := testing.AllocsPerRun(200, func() {
				p.RLock()
				p.RUnlock()
			}); n != 0 {
				t.Fatalf("instrumented biased RLock/RUnlock allocates %.1f times per op, want 0", n)
			}
			if sn, ok := ollock.SnapshotOf(l); !ok || sn.Counters["bravo.read.fast"] == 0 {
				t.Fatalf("instrumentation did not count the fast reads (snapshot %v, ok=%v)", sn.Counters, ok)
			}
		})
	}
}

// readThroughput measures single-proc read acquisitions per
// nanosecond-ish unit: ops over a monotonic-clock interval is noisy in
// CI, so the guard below compares best-of trials with slack instead of
// asserting a tight bound.
func readThroughput(b *testing.B, kind ollock.Kind, opts ...ollock.Option) {
	l := ollock.MustNew(kind, 4, opts...)
	p := l.NewProc()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RLock()
		p.RUnlock()
	}
}

// BenchmarkReadPathStats makes the stats-on/off read-path delta
// visible in `go test -bench`: compare stats=off with stats=on per
// kind (acceptance: on within 15% of off at 100% reads).
func BenchmarkReadPathStats(b *testing.B) {
	for _, kind := range []ollock.Kind{ollock.GOLL, ollock.FOLL, ollock.ROLL, ollock.KindBravoGOLL, ollock.KindBravoROLL} {
		kind := kind
		b.Run(string(kind)+"/stats=off", func(b *testing.B) { readThroughput(b, kind) })
		b.Run(string(kind)+"/stats=on", func(b *testing.B) { readThroughput(b, kind, ollock.WithStats("")) })
	}
}

// TestStatsReadOverheadBounded is the noise-tolerant in-test version
// of the benchmark delta: on an uncontended 100%-read loop, the
// instrumented lock must reach at least 85% of the uninstrumented
// throughput. Best-of-trials on both sides (with whole-test retries)
// absorbs scheduler noise; a genuine hot-path regression — an
// allocation, a shared-line counter — fails by far more than 15%.
func TestStatsReadOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard, skipped with -short")
	}
	const ops = 200_000
	const trials = 5
	measure := func(opts ...ollock.Option) float64 {
		best := 0.0
		for trial := 0; trial < trials; trial++ {
			p := ollock.MustNew(ollock.ROLL, 4, opts...).NewProc()
			start := time.Now()
			for i := 0; i < ops; i++ {
				p.RLock()
				p.RUnlock()
			}
			if rate := float64(ops) / float64(time.Since(start)); rate > best {
				best = rate
			}
		}
		return best
	}
	for attempt := 0; ; attempt++ {
		off := measure()
		on := measure(ollock.WithStats(""))
		if on >= 0.85*off {
			return
		}
		if attempt == 2 {
			t.Fatalf("instrumented read path at %.0f%% of uninstrumented throughput, want >= 85%%", 100*on/off)
		}
	}
}
