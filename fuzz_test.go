package ollock_test

import (
	"testing"

	"ollock"
)

// FuzzNew is the registry's robustness property: for arbitrary kind
// names, option values, and capacities, New never panics and never
// returns (nil, nil) — it either builds a working lock or reports a
// clean error. Seed corpus: every registered kind crossed with the
// interesting option values, plus garbage.
func FuzzNew(f *testing.F) {
	for _, kind := range ollock.Kinds() {
		f.Add(string(kind), "csnzi", "spin", false, 0, 4, false)
		f.Add(string(kind), "sharded", "adaptive", true, 2, 1, true)
		f.Add(string(kind), "central", "array", false, -1, 0, true)
	}
	f.Add("", "", "", false, 0, 0, false)
	f.Add("no-such-kind", "no-such-indicator", "no-such-wait", true, 1<<30, -5, true)
	f.Fuzz(func(t *testing.T, kind, indicator, wait string, bias bool, biasMult, maxProcs int, stats bool) {
		// Bound the capacity: FOLL/ROLL/Hsieh allocate O(maxProcs)
		// arrays eagerly, and the property under test is option
		// validation, not allocator limits.
		if maxProcs > 1024 {
			maxProcs %= 1024
		}
		opts := []ollock.Option{
			ollock.WithIndicator(ollock.IndicatorKind(indicator)),
			ollock.WithWait(ollock.WaitMode(wait)),
		}
		if bias {
			opts = append(opts, ollock.WithBias())
		}
		if biasMult != 0 {
			opts = append(opts, ollock.WithBiasMultiplier(biasMult))
		}
		if stats {
			opts = append(opts, ollock.WithStats(""))
		}
		l, err := ollock.New(ollock.Kind(kind), maxProcs, opts...)
		if err == nil && l == nil {
			t.Fatalf("New(%q, %d, ...) returned (nil, nil)", kind, maxProcs)
		}
		if err != nil && l != nil {
			t.Fatalf("New(%q, %d, ...) returned a lock alongside error %v", kind, maxProcs, err)
		}
		if err != nil {
			return
		}
		p := l.NewProc()
		p.RLock()
		p.RUnlock()
		p.Lock()
		p.Unlock()
	})
}
