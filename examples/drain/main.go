// drain: using the C-SNZI directly — beyond locks — to implement
// graceful shutdown of a request processor: stop admitting new requests
// and wait for the in-flight ones to finish, without a counter that
// every request serializes on.
//
// The C-SNZI is exactly this abstraction: requests Arrive on entry and
// Depart on exit; shutdown Closes the indicator (new arrivals fail) and
// the *last departure from a closed C-SNZI* — the unique false return —
// signals that the drain is complete. No polling, no central count.
//
// Run with: go run ./examples/drain
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ollock"
)

type server struct {
	gate    *ollock.CSNZI
	drained chan struct{}

	accepted, rejected, completed atomic.Int64
}

func newServer() *server {
	return &server{
		gate:    ollock.NewCSNZI(),
		drained: make(chan struct{}),
	}
}

// handle admits and processes one request; it reports whether the
// request was accepted (false once shutdown has begun).
func (s *server) handle(worker int, req int) bool {
	ticket := s.gate.Arrive(worker)
	if !ticket.Arrived() {
		s.rejected.Add(1)
		return false
	}
	s.accepted.Add(1)
	time.Sleep(50 * time.Microsecond) // the "work"
	s.completed.Add(1)
	if !s.gate.Depart(ticket) {
		// We were the last in-flight request after shutdown began.
		close(s.drained)
	}
	return true
}

// shutdown stops admission and waits for in-flight requests.
func (s *server) shutdown() {
	if s.gate.Close() {
		// Closed with zero surplus: nothing was in flight.
		close(s.drained)
	}
	<-s.drained
}

func main() {
	s := newServer()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for req := 0; ; req++ {
				if !s.handle(worker, req) {
					return // admission closed
				}
			}
		}(w)
	}

	time.Sleep(20 * time.Millisecond)
	fmt.Println("initiating shutdown...")
	start := time.Now()
	s.shutdown()
	fmt.Printf("drained in %v\n", time.Since(start).Round(time.Microsecond))

	wg.Wait()
	fmt.Printf("accepted=%d completed=%d rejected-after-close=%d\n",
		s.accepted.Load(), s.completed.Load(), s.rejected.Load())
	if s.accepted.Load() != s.completed.Load() {
		panic("drain completed with requests still in flight")
	}
}
