// kvstore: a read-mostly in-memory key-value store, the workload class
// that motivates scalable reader-writer locks (lookups vastly outnumber
// updates, and lookups should run concurrently without bouncing a
// shared cache line).
//
// The example builds the same store around each lock algorithm in turn
// — including sync.RWMutex as the standard-library reference — and
// measures lookup/update throughput at a 99% read mix, the paper's
// Figure 5(b) ratio.
//
// Run with: go run ./examples/kvstore [-threads N] [-ops N] [-readpct P]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ollock"
	"ollock/internal/xrand"
)

// store is a fixed-shard map guarded by one reader-writer lock; Procs
// give each goroutine its handle.
type store struct {
	lock ollock.Lock
	data map[uint64]uint64
}

func newStore(kind ollock.Kind, maxProcs int) *store {
	return &store{
		lock: ollock.MustNew(kind, maxProcs),
		data: make(map[uint64]uint64),
	}
}

// session is a goroutine's view of the store.
type session struct {
	s *store
	p ollock.Proc
}

func (s *store) session() *session {
	return &session{s: s, p: s.lock.NewProc()}
}

func (se *session) get(k uint64) (uint64, bool) {
	se.p.RLock()
	v, ok := se.s.data[k]
	se.p.RUnlock()
	return v, ok
}

func (se *session) put(k, v uint64) {
	se.p.Lock()
	se.s.data[k] = v
	se.p.Unlock()
}

func main() {
	threads := flag.Int("threads", runtime.GOMAXPROCS(0)*2, "concurrent sessions")
	ops := flag.Int("ops", 50000, "operations per session")
	readPct := flag.Float64("readpct", 99, "percentage of lookups")
	keys := flag.Int("keys", 1024, "key space size")
	flag.Parse()

	kinds := []struct {
		name string
		kind ollock.Kind
	}{
		{"roll", ollock.ROLL},
		{"foll", ollock.FOLL},
		{"goll", ollock.GOLL},
		{"ksuh", ollock.KSUH},
		{"solaris", ollock.Solaris},
	}

	fmt.Printf("kvstore: %d sessions x %d ops, %.0f%% lookups, %d keys\n",
		*threads, *ops, *readPct, *keys)

	for _, k := range kinds {
		thr := run(newStore(k.kind, *threads), *threads, *ops, *readPct/100, *keys)
		fmt.Printf("  %-12s %10.3e ops/s\n", k.name, thr)
	}
	// Standard library reference.
	thr := runStd(*threads, *ops, *readPct/100, *keys)
	fmt.Printf("  %-12s %10.3e ops/s\n", "sync.RWMutex", thr)
}

func run(s *store, threads, ops int, readFrac float64, keys int) float64 {
	// Preload.
	seed := s.session()
	for k := 0; k < keys; k++ {
		seed.put(uint64(k), uint64(k))
	}
	var hits atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < threads-1; g++ { // the seeding session counts as one proc
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			se := s.session()
			rng := xrand.New(uint64(id)*2654435761 + 99)
			for i := 0; i < ops; i++ {
				k := uint64(rng.Intn(keys))
				if rng.Bool(readFrac) {
					if _, ok := se.get(k); ok {
						hits.Add(1)
					}
				} else {
					se.put(k, uint64(i))
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return float64((threads-1)*ops) / elapsed.Seconds()
}

func runStd(threads, ops int, readFrac float64, keys int) float64 {
	var mu sync.RWMutex
	data := make(map[uint64]uint64, keys)
	for k := 0; k < keys; k++ {
		data[uint64(k)] = uint64(k)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < threads-1; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.New(uint64(id)*2654435761 + 99)
			for i := 0; i < ops; i++ {
				k := uint64(rng.Intn(keys))
				if rng.Bool(readFrac) {
					mu.RLock()
					_ = data[k]
					mu.RUnlock()
				} else {
					mu.Lock()
					data[k] = uint64(i)
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	return float64((threads-1)*ops) / time.Since(start).Seconds()
}
