// simstudy: programmatic use of the discrete-event machine simulator to
// study a lock design question — here, how the C-SNZI tree's shape
// affects read-side scalability — the kind of what-if the paper's
// authors would have run on the T5440.
//
// The study compares GOLL on the modeled T5440 against two ablations of
// the machine: one with cheap cross-chip links (CostRemote = CostShared)
// and one with a single big chip, isolating how much of the lock's
// behaviour comes from the machine topology versus the algorithm.
//
// Run with: go run ./examples/simstudy
package main

import (
	"fmt"

	"ollock/internal/sim"
	"ollock/internal/sim/simlock"
)

func main() {
	machines := []struct {
		name string
		cfg  sim.Config
	}{
		{"T5440 (4 chips, hubs)", sim.T5440()},
		{"cheap interconnect", cheapLinks()},
		{"single 256-thread chip", bigChip()},
	}
	threads := []int{1, 16, 64, 128, 256}

	fmt.Println("GOLL read-only throughput (acquires/s) under different machine models")
	fmt.Printf("%-26s", "machine")
	for _, n := range threads {
		fmt.Printf(" %10d", n)
	}
	fmt.Println()
	goll := *simlock.ByName("goll")
	for _, m := range machines {
		fmt.Printf("%-26s", m.name)
		for _, n := range threads {
			r := simlock.RunExperiment(goll, m.cfg, n, 1.0, 150, 7)
			fmt.Printf(" %10.2e", r.Throughput)
		}
		fmt.Println()
	}

	fmt.Println("\nSolaris-like lock on the same machines (central lockword, for contrast)")
	sol := *simlock.ByName("solaris")
	for _, m := range machines {
		fmt.Printf("%-26s", m.name)
		for _, n := range threads {
			r := simlock.RunExperiment(sol, m.cfg, n, 1.0, 150, 7)
			fmt.Printf(" %10.2e", r.Throughput)
		}
		fmt.Println()
	}

	fmt.Println("\nReading the table: the OLL lock's scaling survives expensive")
	fmt.Println("cross-chip links because readers stay on per-core tree leaves;")
	fmt.Println("the centralized lockword pays the interconnect on every acquire.")
}

func cheapLinks() sim.Config {
	cfg := sim.T5440()
	cfg.CostRemote = cfg.CostShared
	return cfg
}

func bigChip() sim.Config {
	cfg := sim.T5440()
	cfg.Chips = 1
	cfg.ThreadsPerChip = 256
	return cfg
}
