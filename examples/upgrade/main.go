// upgrade: the read-then-maybe-write pattern using the GOLL lock's
// write-upgrade operation (§3.2.1 of the paper).
//
// A cache lookup first takes the lock for reading; on a miss, instead of
// the classic "release, reacquire for writing, re-check" dance — which
// opens a window for redundant fills — the reader tries to upgrade its
// read ownership in place. The upgrade succeeds exactly when the caller
// is the only holder; otherwise it keeps its read lock and falls back to
// the classic path.
//
// Run with: go run ./examples/upgrade
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ollock"
)

type cache struct {
	lock *ollock.GOLLLock
	data map[int]string

	// statistics
	upgraded, fallback, hits atomic.Int64
}

func newCache() *cache {
	return &cache{lock: ollock.NewGOLL(), data: make(map[int]string)}
}

// getOrFill returns the cached value for key, filling it with fill() on
// a miss.
func (c *cache) getOrFill(p *ollock.GOLLProc, key int, fill func() string) string {
	p.RLock()
	if v, ok := c.data[key]; ok {
		c.hits.Add(1)
		p.RUnlock()
		return v
	}
	// Miss. Try to become the writer without releasing.
	if p.TryUpgrade() {
		c.upgraded.Add(1)
		v, ok := c.data[key]
		if !ok {
			v = fill()
			c.data[key] = v
		}
		// Downgrade back to a read hold so concurrent readers resume
		// immediately, then release.
		p.Downgrade()
		p.RUnlock()
		return v
	}
	// Other readers present: classic release-and-reacquire.
	c.fallback.Add(1)
	p.RUnlock()
	p.Lock()
	v, ok := c.data[key]
	if !ok {
		v = fill()
		c.data[key] = v
	}
	p.Unlock()
	return v
}

func main() {
	c := newCache()
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := c.lock.NewProc().(*ollock.GOLLProc)
			for i := 0; i < 2000; i++ {
				key := (id*31 + i) % 64
				v := c.getOrFill(p, key, func() string {
					return fmt.Sprintf("value-%d", key)
				})
				if want := fmt.Sprintf("value-%d", key); v != want {
					panic("cache returned " + v + ", want " + want)
				}
			}
		}(g)
	}
	wg.Wait()
	fmt.Printf("cache: %d entries, %d hits\n", len(c.data), c.hits.Load())
	fmt.Printf("misses filled via in-place upgrade: %d\n", c.upgraded.Load())
	fmt.Printf("misses filled via release-and-reacquire fallback: %d\n", c.fallback.Load())
}
