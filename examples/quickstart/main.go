// Quickstart: protect a shared map with a scalable reader-writer lock.
//
// Each participating goroutine creates one Proc handle (the algorithms
// keep per-thread state — queue nodes, C-SNZI tickets — and Go has no
// TLS), then uses RLock/RUnlock and Lock/Unlock exactly like
// sync.RWMutex.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"ollock"
)

func main() {
	const goroutines = 8

	// ROLL: the reader-preference distributed-queue lock — the paper's
	// best performer for read-dominated workloads. Size it for the
	// number of participating goroutines.
	lock := ollock.NewROLL(goroutines)

	index := make(map[string]int) // guarded by lock

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := lock.NewProc() // one handle per goroutine

			key := fmt.Sprintf("worker-%d", id)
			for i := 0; i < 1000; i++ {
				if i%100 == 0 {
					// Rare write: update our entry.
					p.Lock()
					index[key] = i
					p.Unlock()
				} else {
					// Common read: scan the map.
					p.RLock()
					_ = index[key]
					_ = len(index)
					p.RUnlock()
				}
			}
		}(g)
	}
	wg.Wait()

	fmt.Printf("final index has %d entries:\n", len(index))
	for g := 0; g < goroutines; g++ {
		key := fmt.Sprintf("worker-%d", g)
		fmt.Printf("  %s = %d\n", key, index[key])
	}
}
