package ollock

import (
	"io"
	"sync"
	"time"

	"ollock/internal/trace"
)

// This file exposes the flight-recorder tracing layer (internal/trace)
// through the facade. A Tracer owns per-proc ring buffers of fixed-width
// binary events; locks created with WithTrace record their full
// acquisition lifecycle into it (arrive decisions, queue waits, reader
// group joins, indicator close/drain epochs, BRAVO bias transitions,
// hand-offs) at a cost of roughly one clock read and one ring write per
// event. A lock created without WithTrace pays exactly one predictable
// nil-check branch per event site — the same zero-overhead-off
// discipline as WithStats.

// Tracer is a flight recorder shared by any number of traced locks. See
// internal/trace for the event model.
type Tracer = trace.Tracer

// LockTrace is one lock's registration with a Tracer; pass it to
// WithTrace.
type LockTrace = trace.LockTrace

// TraceEvent is one decoded flight-recorder event.
type TraceEvent = trace.Event

// TraceRecording is a portable JSON-serializable dump of a Tracer.
type TraceRecording = trace.Recording

// TraceProfile is a wait-time-by-phase-by-lock contention profile
// folded from a recording.
type TraceProfile = trace.Profile

// TraceWatchdog is the stall watchdog: it polls a Tracer's per-proc
// wait words and dumps live lock state when a proc has been stuck in
// one wait phase past a threshold.
type TraceWatchdog = trace.Watchdog

// NewTracer returns a flight recorder whose per-proc rings hold
// eventsPerProc events each (rounded up to a power of two; <=0 selects
// the default of 8192). Register each lock to be traced with
// Tracer.Register, then create the lock with WithTrace.
func NewTracer(eventsPerProc int) *Tracer { return trace.New(eventsPerProc) }

// NewTraceWatchdog returns a stall watchdog over t reporting to out any
// proc stuck waiting longer than threshold. Call Start to begin
// polling, Stop to halt it.
func NewTraceWatchdog(t *Tracer, threshold time.Duration, out io.Writer) *TraceWatchdog {
	return trace.NewWatchdog(t, threshold, out)
}

// WithTrace attaches the created lock to a flight recorder (see
// NewTracer). Composes with WithStats, WithBias and WithIndicator: a
// biased lock shares the handle between wrapper and base so their
// events interleave on one timeline, and a sharded indicator
// additionally reports its seal epochs.
func WithTrace(lt *LockTrace) Option {
	return func(c *newConfig) { c.lt = lt }
}

// FoldTrace folds a snapshot of the tracer's events into a contention
// profile: wait time by phase by lock, with acquisition counts.
func FoldTrace(t *Tracer) *TraceProfile {
	return trace.Fold(t.Snapshot(), t.LockName)
}

// WriteChromeTrace writes a snapshot of the tracer's events as Chrome
// trace-event JSON, loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing: one process track per lock, one thread track per
// proc, phase spans and instant events.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	return trace.WriteChromeTrace(w, t.Snapshot(), t.LockName)
}

// sealEmitter funnels sharded-indicator seal notifications (which fire
// on whichever goroutine commits the close) into one trace ring. The
// mutex keeps the ring single-writer; seals are rare (one per close
// epoch), so the serialization is off every hot path.
type sealEmitter struct {
	mu sync.Mutex
	tr *trace.Local
}

func (e *sealEmitter) emit(epoch uint64) {
	e.mu.Lock()
	e.tr.Emit(trace.KindIndSeal, 0, epoch)
	e.mu.Unlock()
}
