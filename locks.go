package ollock

import (
	"context"
	"time"

	"ollock/internal/bravo"
	"ollock/internal/central"
	"ollock/internal/chaos"
	"ollock/internal/csnzi"
	"ollock/internal/foll"
	"ollock/internal/goll"
	"ollock/internal/hsieh"
	"ollock/internal/ksuh"
	"ollock/internal/lockcore"
	"ollock/internal/mcs"
	"ollock/internal/obs"
	"ollock/internal/park"
	"ollock/internal/prof"
	"ollock/internal/roll"
	"ollock/internal/snzi"
	"ollock/internal/solaris"
	"ollock/internal/trace"
)

// This file binds the public facade to the algorithm packages. Each lock
// gets a concrete wrapper type whose NewProc returns the per-goroutine
// handle; locks whose native interface is already handle-free (Solaris,
// Central) hand out trivial Procs.

// --- C-SNZI / SNZI re-exports ---

// CSNZI is the closable scalable nonzero indicator, the paper's core
// data structure, usable standalone (e.g. "block new arrivals, then wait
// for in-flight work to drain"). See the csnzi package documentation for
// the operation semantics.
type CSNZI = csnzi.CSNZI

// CSNZITicket is the ticket returned by CSNZI.Arrive.
type CSNZITicket = csnzi.Ticket

// NewCSNZI returns an open C-SNZI with zero surplus.
func NewCSNZI(opts ...csnzi.Option) *CSNZI { return csnzi.New(opts...) }

// CSNZIWithLeaves configures the C-SNZI tree width (0 = centralized).
func CSNZIWithLeaves(n int) csnzi.Option { return csnzi.WithLeaves(n) }

// CSNZIWithFanout bounds children per interior node.
func CSNZIWithFanout(n int) csnzi.Option { return csnzi.WithFanout(n) }

// SNZI is the plain (non-closable) scalable nonzero indicator.
type SNZI = snzi.SNZI

// NewSNZI returns an empty SNZI.
func NewSNZI(opts ...snzi.Option) *SNZI { return snzi.New(opts...) }

// --- GOLL ---

// GOLLLock is the general OLL reader-writer lock. Its Procs additionally
// implement Upgrader.
type GOLLLock struct {
	l     *goll.RWLock
	stats *obs.Stats
	chaos *chaos.Injector
}

func (l *GOLLLock) lockStats() *obs.Stats      { return l.stats }
func (l *GOLLLock) lockChaos() *chaos.Injector { return l.chaos }

// NewGOLL returns a GOLL lock. It has no participant limit.
func NewGOLL() *GOLLLock { return &GOLLLock{l: goll.New()} }

// NewGOLLWithCSNZI returns a GOLL lock using a custom-configured C-SNZI
// (tree width, arrival policy) — the knob the ablation benchmarks turn.
func NewGOLLWithCSNZI(c *CSNZI) *GOLLLock {
	return &GOLLLock{l: goll.New(goll.WithCSNZI(c))}
}

// GOLLProc is the GOLL per-goroutine handle: RLock/RUnlock and
// Lock/Unlock, the Upgrader pair (TryUpgrade/Downgrade), the
// non-blocking TryRLock/TryLock, and SetPriority. It aliases the
// algorithm package's Proc directly — the facade adds no per-call
// indirection.
type GOLLProc = goll.Proc

// NewProc returns a handle for the calling goroutine.
func (l *GOLLLock) NewProc() Proc { return l.l.NewProc() }

// --- FOLL ---

// FOLLLock is the FIFO distributed-queue OLL lock.
type FOLLLock struct {
	l     *foll.RWLock
	stats *obs.Stats
	chaos *chaos.Injector
}

func (l *FOLLLock) lockStats() *obs.Stats      { return l.stats }
func (l *FOLLLock) lockChaos() *chaos.Injector { return l.chaos }

// NewFOLL returns a FOLL lock for up to maxProcs goroutines.
func NewFOLL(maxProcs int) *FOLLLock { return &FOLLLock{l: foll.New(maxProcs)} }

// FOLLProc is the FOLL per-goroutine handle, an alias for the
// algorithm package's Proc.
type FOLLProc = foll.Proc

// NewProc returns a handle for the calling goroutine (panics beyond
// maxProcs).
func (l *FOLLLock) NewProc() Proc { return l.l.NewProc() }

// NodesInUse returns the number of queue nodes currently checked out of
// the ring pool (diagnostic; stable only while the lock is quiescent).
// A quiescent lock must report 1 — the pool invariant torture runs
// check after cancellation storms.
func (l *FOLLLock) NodesInUse() int { return l.l.NodesInUse() }

// Idle reports whether the lock is quiescent: no holder and no queued
// waiter (diagnostic; the answer can be stale under concurrency).
func (l *FOLLLock) Idle() bool { return l.l.Idle() }

// --- ROLL ---

// ROLLLock is the reader-preference distributed-queue OLL lock.
type ROLLLock struct {
	l     *roll.RWLock
	stats *obs.Stats
	chaos *chaos.Injector
}

func (l *ROLLLock) lockStats() *obs.Stats      { return l.stats }
func (l *ROLLLock) lockChaos() *chaos.Injector { return l.chaos }

// NewROLL returns a ROLL lock for up to maxProcs goroutines.
func NewROLL(maxProcs int) *ROLLLock { return &ROLLLock{l: roll.New(maxProcs)} }

// ROLLProc is the ROLL per-goroutine handle, an alias for the
// algorithm package's Proc.
type ROLLProc = roll.Proc

// NewProc returns a handle for the calling goroutine (panics beyond
// maxProcs).
func (l *ROLLLock) NewProc() Proc { return l.l.NewProc() }

// NodesInUse returns the number of queue nodes currently checked out of
// the ring pool (diagnostic; stable only while the lock is quiescent).
// A quiescent lock must report 1.
func (l *ROLLLock) NodesInUse() int { return l.l.NodesInUse() }

// Idle reports whether the lock is quiescent: no holder and no queued
// waiter (diagnostic; the answer can be stale under concurrency).
func (l *ROLLLock) Idle() bool { return l.l.Idle() }

// --- KSUH ---

// KSUHLock is the Krieger–Stumm–Unrau–Hanna fair reader-writer lock.
type KSUHLock struct{ l *ksuh.RWLock }

// NewKSUH returns a KSUH lock (no participant limit).
func NewKSUH() *KSUHLock { return &KSUHLock{l: ksuh.New()} }

// KSUHProc is the KSUH per-goroutine handle (it owns the queue node).
type KSUHProc struct {
	l *ksuh.RWLock
	n ksuh.Node
}

// NewProc returns a handle for the calling goroutine.
func (l *KSUHLock) NewProc() Proc { return &KSUHProc{l: l.l} }

// RLock acquires the lock for reading.
func (p *KSUHProc) RLock() { p.l.RLock(&p.n) }

// RUnlock releases a read acquisition.
func (p *KSUHProc) RUnlock() { p.l.RUnlock(&p.n) }

// Lock acquires the lock for writing.
func (p *KSUHProc) Lock() { p.l.Lock(&p.n) }

// Unlock releases a write acquisition.
func (p *KSUHProc) Unlock() { p.l.Unlock(&p.n) }

// TryRLock acquires for reading without waiting; it reports success.
// Conservative: it succeeds only when the queue is empty.
func (p *KSUHProc) TryRLock() bool { return p.l.TryRLock(&p.n) }

// TryLock acquires for writing without waiting; it reports success.
// Conservative, like TryRLock.
func (p *KSUHProc) TryLock() bool { return p.l.TryLock(&p.n) }

// --- MCS reader-writer ---

// MCSRWLock is the Mellor-Crummey & Scott fair reader-writer lock.
type MCSRWLock struct{ l *mcs.RWLock }

// NewMCSRW returns an MCS reader-writer lock (no participant limit).
func NewMCSRW() *MCSRWLock { return &MCSRWLock{l: mcs.NewRWLock()} }

// MCSRWProc is the per-goroutine handle (it owns the queue node).
type MCSRWProc struct {
	l *mcs.RWLock
	n mcs.RWNode
}

// NewProc returns a handle for the calling goroutine.
func (l *MCSRWLock) NewProc() Proc { return &MCSRWProc{l: l.l} }

// RLock acquires the lock for reading.
func (p *MCSRWProc) RLock() { p.l.RLock(&p.n) }

// RUnlock releases a read acquisition.
func (p *MCSRWProc) RUnlock() { p.l.RUnlock(&p.n) }

// Lock acquires the lock for writing.
func (p *MCSRWProc) Lock() { p.l.Lock(&p.n) }

// Unlock releases a write acquisition.
func (p *MCSRWProc) Unlock() { p.l.Unlock(&p.n) }

// TryRLock acquires for reading without waiting; it reports success.
// Conservative: it succeeds only when the queue is empty.
func (p *MCSRWProc) TryRLock() bool { return p.l.TryRLock(&p.n) }

// TryLock acquires for writing without waiting; it reports success.
// Conservative, like TryRLock.
func (p *MCSRWProc) TryLock() bool { return p.l.TryLock(&p.n) }

// --- MCS mutex (bonus export: the substrate lock) ---

// MCSMutex is the classic MCS queue mutex with a handle-based interface.
type MCSMutex struct{ m *mcs.Mutex }

// NewMCSMutex returns an unlocked MCS mutex.
func NewMCSMutex() *MCSMutex { return &MCSMutex{m: mcs.NewMutex()} }

// MCSMutexProc is the per-goroutine handle for MCSMutex.
type MCSMutexProc struct {
	m *mcs.Mutex
	n mcs.MutexNode
}

// NewProc returns a handle for the calling goroutine.
func (m *MCSMutex) NewProc() *MCSMutexProc { return &MCSMutexProc{m: m.m} }

// Lock acquires the mutex.
func (p *MCSMutexProc) Lock() { p.m.Lock(&p.n) }

// Unlock releases the mutex.
func (p *MCSMutexProc) Unlock() { p.m.Unlock(&p.n) }

// --- Solaris-like ---

// SolarisLock is the user-space Solaris kernel lock. Its methods are
// goroutine-agnostic; NewProc returns the lock itself.
type SolarisLock struct{ l *solaris.RWLock }

// NewSolaris returns a Solaris-like lock (no participant limit).
func NewSolaris() *SolarisLock { return &SolarisLock{l: solaris.New()} }

// NewProc returns a handle (the lock itself: no per-goroutine state).
func (l *SolarisLock) NewProc() Proc { return l }

// RLock acquires the lock for reading.
func (l *SolarisLock) RLock() { l.l.RLock() }

// RUnlock releases a read acquisition.
func (l *SolarisLock) RUnlock() { l.l.RUnlock() }

// Lock acquires the lock for writing.
func (l *SolarisLock) Lock() { l.l.Lock() }

// Unlock releases a write acquisition.
func (l *SolarisLock) Unlock() { l.l.Unlock() }

// TryRLock acquires for reading without waiting; it reports success.
func (l *SolarisLock) TryRLock() bool { return l.l.TryRLock() }

// TryLock acquires for writing without waiting; it reports success.
func (l *SolarisLock) TryLock() bool { return l.l.TryLock() }

// --- Hsieh–Weihl ---

// HsiehLock is the Hsieh–Weihl private-mutex lock.
type HsiehLock struct{ l *hsieh.RWLock }

// NewHsieh returns a Hsieh–Weihl lock for up to maxProcs goroutines.
func NewHsieh(maxProcs int) *HsiehLock { return &HsiehLock{l: hsieh.New(maxProcs)} }

// HsiehProc is the per-goroutine handle (it owns one private mutex),
// an alias for the algorithm package's Proc.
type HsiehProc = hsieh.Proc

// NewProc returns a handle for the calling goroutine (panics beyond
// maxProcs).
func (l *HsiehLock) NewProc() Proc { return l.l.NewProc() }

// --- BRAVO biased wrapper ---

// BravoLock wraps any lock from this package with the BRAVO biased
// reader fast path (Dice & Kogan, ATC '19): while read-biased, readers
// publish in a global visible-readers table and skip the underlying lock
// entirely; a writer revokes the bias and drains published readers
// before relying on the underlying lock for exclusion. Create one with
// WrapBias or via New(kind, n, WithBias()).
type BravoLock struct {
	l     *bravo.Lock
	base  Lock
	stats *obs.Stats
	chaos *chaos.Injector
}

func (l *BravoLock) lockStats() *obs.Stats      { return l.stats }
func (l *BravoLock) lockChaos() *chaos.Injector { return l.chaos }

// WrapBias wraps base with the BRAVO biased reader fast path.
func WrapBias(base Lock) *BravoLock { return wrapBias(base, 0) }

func wrapBias(base Lock, mult int) *BravoLock {
	return wrapBiasStats(base, mult, nil, nil, nil, nil, nil)
}

// wrapBiasStats wraps base, sharing the instrumentation block between
// the wrapper (bravo.* counters) and the underlying lock, so one
// Snapshot covers the whole stack. If base carries a block and st is
// nil the wrapper adopts base's block for SnapshotOf pass-through. lt,
// when non-nil, is the flight-recorder handle shared with the base
// lock (wrapper and base events interleave on one timeline). pol, when
// non-nil, is the lock's shared wait policy; revocation drain waits
// descend its ladder instead of spinning unboundedly. lp, when
// non-nil, is the call-site profiler registration shared with the base
// lock: the wrapper profiles fast-path reads and revocations, the base
// everything that reaches it, so one profile covers the stack without
// double counting.
func wrapBiasStats(base Lock, mult int, st *obs.Stats, lt *trace.LockTrace, pol *park.Policy, lp *prof.LockProf, ch *chaos.Injector) *BravoLock {
	if st == nil {
		if c, ok := base.(statsCarrier); ok {
			st = c.lockStats()
		}
	}
	opts := []bravo.Option{bravo.WithInstr(lockcore.Instr{Stats: st, Trace: lt, Wait: pol, Prof: lp, Chaos: ch})}
	if mult > 0 {
		opts = append(opts, bravo.WithInhibitMultiplier(mult))
	}
	return &BravoLock{
		l:     bravo.New(func() bravo.BaseProc { return base.NewProc() }, opts...),
		base:  base,
		stats: st,
		chaos: ch,
	}
}

// Base returns the wrapped lock (diagnostic: torture runners reach the
// base lock's pool accounting through it).
func (l *BravoLock) Base() Lock { return l.base }

// Biased reports whether the read bias is currently armed. Diagnostic;
// the answer can be stale by the time it returns.
func (l *BravoLock) Biased() bool { return l.l.Biased() }

// BravoProc is the per-goroutine handle of a BravoLock: RLock takes
// the biased fast path while the read bias is armed, Lock revokes the
// bias first, and ReadFastPath reports which path the current read
// acquisition took. It aliases the wrapper package's Proc directly.
type BravoProc = bravo.Proc

// NewProc returns a handle for the calling goroutine (subject to the
// underlying lock's participant limit, if any).
func (l *BravoLock) NewProc() Proc { return l.l.NewProc() }

// --- Centralized ---

// CentralLock is the naive centralized counter+flag lock.
type CentralLock struct{ l *central.RWLock }

// NewCentral returns a centralized lock (no participant limit).
func NewCentral() *CentralLock { return &CentralLock{l: central.New()} }

// NewProc returns a handle (the lock itself: no per-goroutine state).
func (l *CentralLock) NewProc() Proc { return l }

// RLock acquires the lock for reading.
func (l *CentralLock) RLock() { l.l.RLock() }

// RUnlock releases a read acquisition.
func (l *CentralLock) RUnlock() { l.l.RUnlock() }

// Lock acquires the lock for writing.
func (l *CentralLock) Lock() { l.l.Lock() }

// Unlock releases a write acquisition.
func (l *CentralLock) Unlock() { l.l.Unlock() }

// TryRLock acquires for reading without waiting; it reports success.
func (l *CentralLock) TryRLock() bool { return l.l.TryRLock() }

// TryLock acquires for writing without waiting; it reports success.
func (l *CentralLock) TryLock() bool { return l.l.TryLock() }

// RLockFor acquires for reading, giving up after d; it reports whether
// the lock was acquired.
func (l *CentralLock) RLockFor(d time.Duration) bool { return l.l.RLockFor(d) }

// LockFor acquires for writing, giving up after d; it reports whether
// the lock was acquired.
func (l *CentralLock) LockFor(d time.Duration) bool { return l.l.LockFor(d) }

// RLockCtx acquires for reading, abandoning when ctx is done. It
// returns nil on acquisition and the context's error otherwise.
func (l *CentralLock) RLockCtx(ctx context.Context) error { return l.l.RLockCtx(ctx) }

// LockCtx acquires for writing, abandoning when ctx is done. It
// returns nil on acquisition and the context's error otherwise.
func (l *CentralLock) LockCtx(ctx context.Context) error { return l.l.LockCtx(ctx) }
