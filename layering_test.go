package ollock_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestAlgorithmPackageLayering pins the lockcore layering rule: the
// lock algorithm packages reach the instrumentation substrate (obs
// counters, the trace flight recorder, the park wait policies) only
// through internal/lockcore. A direct import from an algorithm package
// means a second copy of the nil-guard idiom is growing back — the
// exact duplication the lockcore extraction removed.
func TestAlgorithmPackageLayering(t *testing.T) {
	algorithmPkgs := []string{"goll", "foll", "roll", "bravo", "central"}
	forbidden := map[string]bool{
		"ollock/internal/obs":   true,
		"ollock/internal/trace": true,
		"ollock/internal/park":  true,
		"ollock/internal/prof":  true,
	}
	fset := token.NewFileSet()
	for _, pkg := range algorithmPkgs {
		dir := filepath.Join("internal", pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		sawLockcore := false
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			for _, imp := range f.Imports {
				ipath, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					t.Fatalf("%s: bad import literal %s", path, imp.Path.Value)
				}
				if forbidden[ipath] {
					t.Errorf("%s imports %s directly; algorithm packages must go through internal/lockcore", path, ipath)
				}
				if ipath == "ollock/internal/lockcore" {
					sawLockcore = true
				}
			}
		}
		if !sawLockcore {
			t.Errorf("package internal/%s does not import internal/lockcore — did the instrumentation layer move?", pkg)
		}
	}
}
