package ollock_test

import (
	"bytes"
	"runtime"
	"strings"
	"sync"
	"testing"

	"ollock"
	"ollock/internal/prof"
)

// profileWorkload drives writers against readers hard enough that the
// writer path reliably contends, with every acquisition sampled. The
// Gosched inside each critical section forces goroutine overlap even
// on GOMAXPROCS=1, where otherwise a nanosecond critical section would
// never be observed held.
func profileWorkload(t *testing.T, l ollock.Lock, iters int) {
	t.Helper()
	var wg sync.WaitGroup
	shared := 0
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := l.NewProc()
			for i := 0; i < iters; i++ {
				if i%4 == 0 {
					p.Lock()
					shared++
					runtime.Gosched()
					p.Unlock()
				} else {
					p.RLock()
					_ = shared
					runtime.Gosched()
					p.RUnlock()
				}
			}
		}()
	}
	wg.Wait()
}

// TestProfileEndToEnd is the acceptance path: a contended GOLL
// workload under WithProfile produces a pprof contention profile whose
// top sample symbolizes back to this test's acquire call site, with
// the lock's registered name as the sample label.
func TestProfileEndToEnd(t *testing.T) {
	p := ollock.NewProfiler(1)
	l, err := ollock.New("goll", 4, ollock.WithProfile(p.Register("goll")))
	if err != nil {
		t.Fatal(err)
	}
	profileWorkload(t, l, 2000)

	var buf bytes.Buffer
	if err := ollock.WriteLockProfile(&buf, p, ollock.ProfileContention); err != nil {
		t.Fatal(err)
	}
	parsed, err := prof.Parse(buf.Bytes())
	if err != nil {
		t.Fatalf("parsing the facade profile: %v", err)
	}
	if len(parsed.Samples) == 0 {
		t.Fatal("contended workload produced no contention samples")
	}
	top := parsed.Samples[0] // records encode hottest-first
	if top.Labels["lock"] != "goll" {
		t.Errorf("top sample lock label %q, want goll", top.Labels["lock"])
	}
	if len(top.Funcs) == 0 || !strings.Contains(top.Funcs[0], "goll.(*Proc)") {
		t.Errorf("top sample leaf %v, want a goll lock method", top.Funcs)
	}
	var caller bool
	for _, f := range top.Funcs {
		if strings.Contains(f, "profileWorkload") {
			caller = true
		}
	}
	if !caller {
		t.Errorf("top sample does not symbolize to the acquire call site; stack: %v", top.Funcs)
	}

	// The hottest contended call site reduction agrees.
	site, ok := p.HottestSite("goll")
	if !ok {
		t.Fatal("no hottest site for a contended lock")
	}
	if !strings.Contains(site.Func, "profileWorkload") {
		t.Errorf("hottest site %q, want the workload's acquire site", site.Func)
	}
	if site.Contentions == 0 || site.DelayNs == 0 {
		t.Errorf("hottest site has empty totals: %+v", site)
	}
}

// TestProfileBiasShared: a BRAVO-wrapped lock shares one registration
// between wrapper and base, so fast-path reads, slow-path
// acquisitions, and revocations land in one profile under one name —
// wrapper and base frames both present, every sample labelled with the
// single registered lock.
func TestProfileBiasShared(t *testing.T) {
	p := ollock.NewProfiler(1)
	l, err := ollock.New("goll", 4,
		ollock.WithProfile(p.Register("biased")), ollock.WithBias())
	if err != nil {
		t.Fatal(err)
	}
	profileWorkload(t, l, 2000)

	snap := p.Profile()
	if len(snap.Records) == 0 {
		t.Fatal("biased workload recorded nothing")
	}
	var sawWrapper, sawBase bool
	var holds, heldNs uint64
	for _, r := range snap.Records {
		if r.Lock != "biased" {
			t.Errorf("record under lock %q, want the single shared name", r.Lock)
		}
		holds += r.Holds
		heldNs += r.HeldNs
	}
	if holds == 0 || heldNs == 0 {
		t.Error("biased profile has no hold accounting")
	}

	var buf bytes.Buffer
	if err := ollock.WriteLockFolded(&buf, p, ollock.ProfileHold); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "bravo.(*Proc)") {
			sawWrapper = true
		}
		if strings.Contains(line, "goll.(*Proc)") {
			sawBase = true
		}
	}
	if !sawWrapper {
		t.Error("no hold sample flowed through the bravo wrapper fast path")
	}
	if !sawBase {
		t.Error("no hold sample reached the base lock")
	}
}

// TestProfileCompositionWithStats: WithProfile composes with the rest
// of the option surface on a fully instrumented lock.
func TestProfileCompositionWithStats(t *testing.T) {
	p := ollock.NewProfiler(2)
	m := ollock.NewMetrics(ollock.MetricsProfiler(p))
	l, err := ollock.New("roll", 4,
		ollock.WithMetrics(m),
		ollock.WithStats("roll"),
		ollock.WithProfile(p.Register("roll")),
		ollock.WithWait(ollock.WaitMode("adaptive")))
	if err != nil {
		t.Fatal(err)
	}
	profileWorkload(t, l, 1000)
	if len(p.Profile().Records) == 0 {
		t.Error("instrumented roll lock recorded no profile samples")
	}
	// Diagnose must run with the profiler attached (hot-site attachment
	// path), findings or not.
	_ = m.Diagnose(0)
}
