// Benchmarks regenerating the paper's evaluation (Figure 5, panels
// (a)-(f)): throughput of each reader-writer lock under the §5.1
// workload — every thread acquires and releases one lock in a tight
// loop with an empty critical section at a fixed read percentage.
//
// Two families:
//
//   - BenchmarkFig5: real goroutines on the host. Each benchmark
//     iteration performs one complete measured run and reports the
//     paper's metric (acquires/s). On a big multicore host, sweep
//     threads wider via cmd/benchfig5.
//   - BenchmarkSimFig5: the same experiment on the simulated 4-chip,
//     256-hardware-thread T5440 (see internal/sim), which reproduces the
//     paper's thread range on any host. Reports simulated acquires/s.
//
// Each sub-benchmark name encodes panel, read percentage, lock, and
// thread count: e.g. BenchmarkSimFig5/b_r99/roll/t256.
package ollock_test

import (
	"fmt"
	"testing"

	"ollock/internal/harness"
	"ollock/internal/locksuite"
	"ollock/internal/sim"
	"ollock/internal/sim/simlock"
)

// fig5Panels maps each panel of Figure 5 to its read fraction.
var fig5Panels = []struct {
	panel string
	frac  float64
}{
	{"a_r100", 1.00},
	{"b_r99", 0.99},
	{"c_r95", 0.95},
	{"d_r80", 0.80},
	{"e_r50", 0.50},
	{"f_r0", 0.00},
}

// fig5LockNames are the five locks in the paper's Figure 5 legend.
var fig5LockNames = []string{"goll", "foll", "roll", "ksuh", "solaris"}

// BenchmarkFig5 runs the real-goroutine version of every panel. The
// reported acq/s metric is the paper's y-axis.
func BenchmarkFig5(b *testing.B) {
	threadCounts := []int{2, 8}
	for _, p := range fig5Panels {
		for _, name := range fig5LockNames {
			impl := locksuite.ByName(name)
			if impl == nil {
				b.Fatalf("no lock %q", name)
			}
			for _, threads := range threadCounts {
				ops := 4000
				if p.frac <= 0.5 {
					ops = 1000 // mirror the paper's shorter heavy-writer runs
				}
				b.Run(fmt.Sprintf("%s/%s/t%d", p.panel, name, threads), func(b *testing.B) {
					var last harness.Result
					for i := 0; i < b.N; i++ {
						last = harness.Run(harness.Config{
							Impl:         *impl,
							Threads:      threads,
							ReadFraction: p.frac,
							OpsPerThread: ops,
							Runs:         1,
							Seed:         uint64(42 + i),
						})
					}
					b.ReportMetric(last.Throughput, "acq/s")
					b.ReportMetric(0, "ns/op") // the acq/s metric is the result
				})
			}
		}
	}
}

// BenchmarkSimFig5 runs every panel on the simulated T5440 at on-chip
// (64) and full-machine (256) thread counts — the two regimes whose
// contrast carries the paper's story.
func BenchmarkSimFig5(b *testing.B) {
	threadCounts := []int{64, 256}
	for _, p := range fig5Panels {
		for _, f := range simlock.Figure5Locks() {
			f := f
			for _, threads := range threadCounts {
				b.Run(fmt.Sprintf("%s/%s/t%d", p.panel, f.Name, threads), func(b *testing.B) {
					var last simlock.Result
					for i := 0; i < b.N; i++ {
						last = simlock.RunExperiment(f, sim.T5440(), threads, p.frac, 80, uint64(42+i))
					}
					b.ReportMetric(last.Throughput, "sim-acq/s")
					b.ReportMetric(last.RemoteFraction*100, "remote%")
				})
			}
		}
	}
}

// BenchmarkBravoSweep compares a BRAVO-wrapped lock against its
// unwrapped base with real goroutines across the Figure 5 read ratios.
// The interesting column is acq/s of bravo-* vs its base at r100/r99.
func BenchmarkBravoSweep(b *testing.B) {
	const threads = 8
	for _, p := range fig5Panels {
		for _, name := range []string{"goll", "roll", "bravo-goll", "bravo-roll"} {
			impl := locksuite.ByName(name)
			if impl == nil {
				b.Fatalf("no lock %q", name)
			}
			ops := 4000
			if p.frac <= 0.5 {
				ops = 1000
			}
			b.Run(fmt.Sprintf("%s/%s/t%d", p.panel, name, threads), func(b *testing.B) {
				var last harness.Result
				for i := 0; i < b.N; i++ {
					last = harness.Run(harness.Config{
						Impl:         *impl,
						Threads:      threads,
						ReadFraction: p.frac,
						OpsPerThread: ops,
						Runs:         1,
						Seed:         uint64(42 + i),
					})
				}
				b.ReportMetric(last.Throughput, "acq/s")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkSimBravoSweep is the simulated-T5440 version of
// BenchmarkBravoSweep, at on-chip and full-machine thread counts. The
// same sweep with per-run counters and JSON output is available via
// `make bench-json` (cmd/benchbravo).
func BenchmarkSimBravoSweep(b *testing.B) {
	threadCounts := []int{64, 256}
	for _, p := range fig5Panels {
		for _, name := range []string{"goll", "roll", "bravo-goll", "bravo-roll"} {
			f := simlock.ByName(name)
			if f == nil {
				b.Fatalf("no sim lock %q", name)
			}
			for _, threads := range threadCounts {
				b.Run(fmt.Sprintf("%s/%s/t%d", p.panel, name, threads), func(b *testing.B) {
					var last simlock.Result
					for i := 0; i < b.N; i++ {
						last = simlock.RunExperiment(*f, sim.T5440(), threads, p.frac, 80, uint64(42+i))
					}
					b.ReportMetric(last.Throughput, "sim-acq/s")
					b.ReportMetric(last.RemoteFraction*100, "remote%")
				})
			}
		}
	}
}

// BenchmarkUncontended measures the single-thread acquire+release latency
// of every lock in the module — the "overhead in the absence of
// contention" the paper's C-SNZI design keeps small (§1).
func BenchmarkUncontended(b *testing.B) {
	for _, impl := range locksuite.Locks {
		impl := impl
		b.Run("read/"+impl.Name, func(b *testing.B) {
			p := impl.New(1)()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.RLock()
				p.RUnlock()
			}
		})
		b.Run("write/"+impl.Name, func(b *testing.B) {
			p := impl.New(1)()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Lock()
				p.Unlock()
			}
		})
	}
}

// BenchmarkReadContended measures parallel read-side throughput (the
// heart of the paper's contribution) for every lock via RunParallel.
func BenchmarkReadContended(b *testing.B) {
	for _, impl := range locksuite.Locks {
		impl := impl
		b.Run(impl.Name, func(b *testing.B) {
			mk := impl.New(1024)
			b.RunParallel(func(pb *testing.PB) {
				p := mk()
				for pb.Next() {
					p.RLock()
					p.RUnlock()
				}
			})
		})
	}
}

// BenchmarkUpgrade measures the GOLL write-upgrade fast path.
func BenchmarkUpgrade(b *testing.B) {
	impl := locksuite.ByName("goll")
	p := impl.New(1)()
	u := p.(locksuite.Upgrader)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.RLock()
		if !u.TryUpgrade() {
			b.Fatal("upgrade failed uncontended")
		}
		p.Unlock()
	}
}
