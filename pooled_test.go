package ollock_test

import (
	"sync"
	"testing"
	"time"

	"ollock"
)

func TestPooledBasic(t *testing.T) {
	for _, kind := range ollock.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			p := ollock.MustNewPooled(kind, 8)
			counter := 0
			var wg sync.WaitGroup
			for g := 0; g < 6; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 300; i++ {
						if i%5 == 0 {
							p.Write(func() { counter++ })
						} else {
							p.Read(func() { _ = counter })
						}
					}
				}()
			}
			wg.Wait()
			if counter != 6*300/5 {
				t.Fatalf("counter = %d, want %d", counter, 6*300/5)
			}
		})
	}
}

func TestPooledReadersOverlap(t *testing.T) {
	p := ollock.MustNewPooled(ollock.ROLL, 4)
	firstIn := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		p.Read(func() {
			close(firstIn)
			<-release
		})
		close(done)
	}()
	<-firstIn
	overlapped := make(chan struct{})
	go func() {
		p.Read(func() { close(overlapped) })
	}()
	select {
	case <-overlapped:
	case <-time.After(20 * time.Second):
		t.Fatal("pooled readers failed to overlap")
	}
	close(release)
	<-done
}

func TestPooledThrottlesAtCapacity(t *testing.T) {
	// Pool of 1: a second reader must wait for the proc, even though the
	// lock itself would admit it.
	p := ollock.MustNewPooled(ollock.GOLL, 1)
	firstIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		p.Read(func() {
			close(firstIn)
			<-release
		})
	}()
	<-firstIn
	second := make(chan struct{})
	go func() {
		p.Read(func() {})
		close(second)
	}()
	select {
	case <-second:
		t.Fatal("second section ran despite pool capacity 1")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-second:
	case <-time.After(20 * time.Second):
		t.Fatal("second section never ran")
	}
}

func TestPooledPanicInSectionReleasesProc(t *testing.T) {
	p := ollock.MustNewPooled(ollock.FOLL, 1)
	func() {
		defer func() { recover() }()
		p.Write(func() { panic("boom") })
	}()
	// The proc (and the lock) must be reusable.
	ran := make(chan struct{})
	go func() {
		p.Write(func() {})
		close(ran)
	}()
	select {
	case <-ran:
	case <-time.After(20 * time.Second):
		t.Fatal("lock unusable after a panicking section")
	}
}

func TestPooledUnderlying(t *testing.T) {
	p := ollock.MustNewPooled(ollock.GOLL, 2)
	if p.Underlying() == nil {
		t.Fatal("no underlying lock")
	}
	// Mixing APIs: a handle from the underlying lock interoperates.
	h := p.Underlying().NewProc()
	h.Lock()
	blocked := make(chan struct{})
	go func() {
		p.Read(func() {})
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("pooled read ran during handle-held write")
	case <-time.After(50 * time.Millisecond):
	}
	h.Unlock()
	<-blocked
}

func TestNewPooledBadKind(t *testing.T) {
	if _, err := ollock.NewPooled("bogus", 4); err == nil {
		t.Fatal("expected error")
	}
}

func TestNewPooledDefaultSize(t *testing.T) {
	p, err := ollock.NewPooled(ollock.Central, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Read(func() {})
	p.Write(func() {})
}

func BenchmarkPooledRead(b *testing.B) {
	p := ollock.MustNewPooled(ollock.ROLL, 16)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.Read(func() {})
		}
	})
}

func BenchmarkPooledWrite(b *testing.B) {
	p := ollock.MustNewPooled(ollock.ROLL, 16)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.Write(func() {})
		}
	})
}
