package ollock_test

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"ollock/internal/obs"
)

// dottedName matches the counter/histogram naming convention: all
// lowercase dotted segments ("csnzi.arrive.root"). Other backticked
// tokens in the glossary — Go identifiers, file names, paths — contain
// uppercase letters, underscores, or slashes and fall outside it.
var dottedName = regexp.MustCompile("`([a-z][a-z0-9]*(?:\\.[a-z][a-z0-9]*)+)`")

// glossarySection returns the body of the ALGORITHMS.md section whose
// heading starts with the given prefix, up to the next "## " heading.
func glossarySection(t *testing.T, headingPrefix string) string {
	t.Helper()
	raw, err := os.ReadFile("ALGORITHMS.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	start := strings.Index(text, headingPrefix)
	if start < 0 {
		t.Fatalf("heading %q not found in ALGORITHMS.md", headingPrefix)
	}
	body := text[start:]
	if end := strings.Index(body[1:], "\n## "); end >= 0 {
		body = body[:end+1]
	}
	return body
}

// TestGlossaryMatchesObsNames pins the ALGORITHMS.md §11 counter and
// histogram glossary to the obs name tables exactly, both directions —
// the same drift guard the trace schema gets from its kind-enum sync
// test. Adding an Event or HistID without documenting it (or
// documenting a name that no longer exists) fails here.
func TestGlossaryMatchesObsNames(t *testing.T) {
	body := glossarySection(t, "## 11.")
	documented := map[string]bool{}
	for _, m := range dottedName.FindAllStringSubmatch(body, -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no dotted names found in §11 (glossary layout changed?)")
	}
	declared := map[string]bool{}
	for _, n := range obs.AllEventNames() {
		declared[n] = true
	}
	for _, n := range obs.AllHistNames() {
		declared[n] = true
	}
	for n := range declared {
		if !documented[n] {
			t.Errorf("obs name %q is not documented in ALGORITHMS.md §11", n)
		}
	}
	for n := range documented {
		if !declared[n] {
			t.Errorf("ALGORITHMS.md §11 documents %q, which does not exist in obs", n)
		}
	}
}
