package ollock

// This file provides the pooled convenience API: a sync.RWMutex-shaped
// wrapper for code that cannot thread per-goroutine Procs through its
// call paths. A fixed set of Procs is created up front and checked out
// per critical section; when all are in use, callers queue on the pool.
//
// The handle-based API (Lock.NewProc) remains the fast path — checkout
// adds a channel round trip per acquisition — but the pooled form is
// convenient for drop-in use and for callers whose goroutines are
// short-lived.

// Pooled wraps a Lock with a bounded pool of Procs so critical sections
// can be run without managing handles. Create with NewPooled.
type Pooled struct {
	lock  Lock
	procs chan Proc
}

// NewPooled creates a lock of the given kind with a pool of poolSize
// Procs. poolSize bounds the number of concurrently held critical
// sections; additional callers wait for a free Proc.
func NewPooled(kind Kind, poolSize int) (*Pooled, error) {
	if poolSize <= 0 {
		poolSize = 16
	}
	l, err := New(kind, poolSize)
	if err != nil {
		return nil, err
	}
	p := &Pooled{lock: l, procs: make(chan Proc, poolSize)}
	for i := 0; i < poolSize; i++ {
		p.procs <- l.NewProc()
	}
	return p, nil
}

// MustNewPooled is NewPooled, panicking on error.
func MustNewPooled(kind Kind, poolSize int) *Pooled {
	p, err := NewPooled(kind, poolSize)
	if err != nil {
		panic(err)
	}
	return p
}

// Read runs fn while holding the lock for reading.
func (p *Pooled) Read(fn func()) {
	proc := <-p.procs
	proc.RLock()
	// A deferred method call (not a closure) keeps the per-section cost
	// at the channel round trip; the defer still releases on panic.
	defer p.releaseRead(proc)
	fn()
}

func (p *Pooled) releaseRead(proc Proc) {
	proc.RUnlock()
	p.procs <- proc
}

// Write runs fn while holding the lock for writing.
func (p *Pooled) Write(fn func()) {
	proc := <-p.procs
	proc.Lock()
	defer p.releaseWrite(proc)
	fn()
}

func (p *Pooled) releaseWrite(proc Proc) {
	proc.Unlock()
	p.procs <- proc
}

// Underlying returns the wrapped Lock, for callers that want to mix the
// pooled and handle-based APIs on one lock instance. Handles created
// with NewProc on a FOLL/ROLL/Hsieh lock count against the same
// poolSize capacity.
func (p *Pooled) Underlying() Lock { return p.lock }
