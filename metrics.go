package ollock

import (
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"time"

	"ollock/internal/doctor"
	"ollock/internal/metrics"
	"ollock/internal/obs"
)

// Metrics is the live observability pipeline for a set of instrumented
// locks: a registry the locks report into, a periodic sampler that
// snapshots every registered lock's counters and histograms into a
// fixed-size time-series ring, a Prometheus/OpenMetrics + JSON HTTP
// exporter over those rings, and the pathology doctor evaluated over
// the sampled rate windows.
//
// Create one with NewMetrics, hand it to each New call through
// WithMetrics, then Start it. Everything is pull-based: the sampler
// reads the same striped counters the locks already maintain, so the
// locks' hot paths are untouched by sampling frequency (the metrics-off
// fast path is untouched entirely — an uninstrumented lock never sees
// any of this machinery).
type Metrics struct {
	reg     *obs.Registry
	sampler *metrics.Sampler
	cfg     doctor.Config
	wd      *TraceWatchdog
	prof    *Profiler
}

// MetricsOption configures NewMetrics.
type MetricsOption func(*metricsConfig)

type metricsConfig struct {
	period time.Duration
	ring   int
	cfg    doctor.Config
	wd     *TraceWatchdog
	prof   *Profiler
}

// MetricsPeriod sets the sampling period (default one second; floor one
// millisecond). Shorter periods sharpen the doctor's rate windows at
// the cost of proportionally more snapshot work per second — one
// counter-block read per registered lock per tick, nothing on the lock
// hot paths.
func MetricsPeriod(d time.Duration) MetricsOption {
	return func(c *metricsConfig) { c.period = d }
}

// MetricsRing sets how many samples each lock's time-series ring
// retains (default 600 — ten minutes at the default period).
func MetricsRing(n int) MetricsOption {
	return func(c *metricsConfig) { c.ring = n }
}

// MetricsDoctorConfig overrides the doctor's rule thresholds (default
// DefaultDoctorConfig).
func MetricsDoctorConfig(cfg DoctorConfig) MetricsOption {
	return func(c *metricsConfig) { c.cfg = cfg }
}

// MetricsWatchdog folds a stall watchdog's findings into Diagnose:
// each call polls wd synchronously and attaches any stalled waiters to
// the window of the lock they are stuck on (matched by name, so the
// Tracer and the stats block must share it — WithStats and WithTrace
// take the same name).
func MetricsWatchdog(wd *TraceWatchdog) MetricsOption {
	return func(c *metricsConfig) { c.wd = wd }
}

// MetricsProfiler folds a call-site profiler's attribution into
// Diagnose: contention-shaped findings (writer starvation, bias
// thrash) carry the hottest contended call site of the diagnosed lock
// (matched by name, so the Profiler registration and the stats block
// must share it — Profiler.Register and WithStats take the same name).
func MetricsProfiler(p *Profiler) MetricsOption {
	return func(c *metricsConfig) { c.prof = p }
}

// NewMetrics creates an idle metrics pipeline. Register locks with
// WithMetrics, then either call Start for continuous background
// sampling or Sample manually at moments of your choosing.
func NewMetrics(opts ...MetricsOption) *Metrics {
	c := metricsConfig{period: time.Second, ring: 600, cfg: doctor.DefaultConfig()}
	for _, o := range opts {
		o(&c)
	}
	reg := obs.NewRegistry()
	return &Metrics{
		reg: reg,
		sampler: metrics.New(reg,
			metrics.WithPeriod(c.period), metrics.WithRing(c.ring)),
		cfg:  c.cfg,
		wd:   c.wd,
		prof: c.prof,
	}
}

// WithMetrics registers the created lock with the metrics pipeline and
// implies WithStats (an unnamed block, unless WithStats also appears
// and names it). Locks sharing a pipeline are distinguished by their
// stats name in every export ("lock" when unnamed; duplicates get a
// "#2", "#3", ... suffix in registration order).
func WithMetrics(m *Metrics) Option {
	return func(c *newConfig) {
		c.withStats = true
		c.metrics = m
	}
}

// Start begins background sampling at the configured period.
// Idempotent; pair with Stop.
func (m *Metrics) Start() { m.sampler.Start() }

// Stop halts background sampling and waits for the sampler goroutine
// to exit. The retained rings stay readable.
func (m *Metrics) Stop() { m.sampler.Stop() }

// Sample takes one synchronous sample of every registered lock.
// Useful without Start (manual cadence) or right before Collect.
func (m *Metrics) Sample() { m.sampler.SampleNow() }

// Samples reports how many sampling passes have run.
func (m *Metrics) Samples() uint64 { return m.sampler.Samples() }

// Handler returns the scrape endpoint: Prometheus/OpenMetrics text by
// default, JSON time series when the request prefers application/json
// (or targets a path ending in ".json"). Mount it wherever you serve
// operational endpoints:
//
//	http.Handle("/metrics", m.Handler())
//
// Every exported name is documented in METRICS.md.
func (m *Metrics) Handler() http.Handler { return m.sampler.Handler() }

// WritePrometheus writes the current rings' latest values in
// Prometheus/OpenMetrics text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	return m.sampler.WritePrometheus(w)
}

// Diagnose evaluates the pathology rules over roughly the last d of
// samples (all retained history when d <= 0) and returns the findings,
// most severe first; an empty slice means every sampled lock looks
// healthy. A fresh sample is taken first so the evaluated window
// reaches now. When a watchdog is attached its current stalls are
// folded into the matching locks' windows; when a profiler is attached
// (MetricsProfiler) contention findings carry the hottest contended
// call site.
func (m *Metrics) Diagnose(d time.Duration) []Finding {
	m.sampler.SampleNow()
	windows := doctor.WindowsFrom(m.sampler, m.reg, d)
	if m.wd != nil {
		windows = doctor.AttachStalls(windows, m.wd.CheckNow())
	}
	if m.prof != nil {
		snap := m.prof.Profile()
		windows = doctor.AttachHotSites(windows, func(lock string) (doctor.CallSite, bool) {
			site, ok := snap.HottestSite(lock)
			if !ok {
				return doctor.CallSite{}, false
			}
			return doctor.CallSite{
				Site:        fmt.Sprintf("%s (%s:%d)", site.Func, filepath.Base(site.File), site.Line),
				Contentions: site.Contentions,
				DelayNs:     site.DelayNs,
			}, true
		})
	}
	return doctor.Diagnose(m.cfg, windows)
}

// Finding is one diagnosed lock pathology: which rule fired on which
// lock, how severe it is, the evidence (counter rates and histogram
// quantiles from the sampled window), and what to try about it.
type Finding = doctor.Finding

// DoctorConfig holds the pathology rules' thresholds.
type DoctorConfig = doctor.Config

// DefaultDoctorConfig returns thresholds tuned for nanosecond-scale
// timings on real hardware (the sim harness re-bases them to cycles).
func DefaultDoctorConfig() DoctorConfig { return doctor.DefaultConfig() }

// DoctorReport renders findings as an indented human-readable report,
// "doctor: no findings" when the slice is empty.
func DoctorReport(findings []Finding) string { return doctor.Report(findings) }
