package ollock_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ollock"
	"ollock/internal/lockcore"
	"ollock/internal/locksuite"
	"ollock/internal/sim/simlock"
)

// These tests pin the single-source-of-truth property of the kind
// registry (internal/lockcore): the public facade, the locksuite
// correctness battery, and the simulator's lock table must all
// enumerate exactly the registry's kinds with the registry's
// capabilities, and New must accept exactly the option combinations
// the capability flags advertise.

// TestKindsMatchRegistry: ollock.Kinds and ollock.KindInfos are the
// registry, verbatim and in order.
func TestKindsMatchRegistry(t *testing.T) {
	descs := lockcore.Descs()
	kinds := ollock.Kinds()
	if len(kinds) != len(descs) {
		t.Fatalf("Kinds() has %d entries, registry has %d", len(kinds), len(descs))
	}
	infos := ollock.KindInfos()
	for i, d := range descs {
		if string(kinds[i]) != d.Name {
			t.Errorf("Kinds()[%d] = %q, registry says %q", i, kinds[i], d.Name)
		}
		info := infos[i]
		if string(info.Kind) != d.Name {
			t.Errorf("KindInfos()[%d].Kind = %q, registry says %q", i, info.Kind, d.Name)
		}
		if info.Indicator != d.Caps.Indicator || info.Wait != d.Caps.Wait ||
			info.Upgrade != d.Caps.Upgrade || info.Priority != d.Caps.Priority ||
			info.BoundedProcs != d.Caps.BoundedProcs || info.Instrumented != d.Caps.Instrumented ||
			info.Profiled != d.Caps.Profiled || info.Cancellable != d.Caps.Cancellable ||
			info.Biased != d.ForceBias || info.Figure5 != d.Figure5 {
			t.Errorf("KindInfos()[%d] (%s) = %+v, disagrees with registry descriptor %+v", i, d.Name, info, d)
		}
		got, ok := ollock.InfoOf(ollock.Kind(d.Name))
		if !ok || got != info {
			t.Errorf("InfoOf(%q) = %+v ok=%v, want %+v", d.Name, got, ok, info)
		}
	}
	if _, ok := ollock.InfoOf("no-such-kind"); ok {
		t.Error("InfoOf reports ok for an unknown kind")
	}
}

// TestLocksuiteMatchesRegistry: the correctness battery's Locks table
// is the registry's kinds (names, order, upgradability), plus the
// sync.RWMutex reference point, plus the lock × indicator matrix.
func TestLocksuiteMatchesRegistry(t *testing.T) {
	descs := lockcore.Descs()
	i := 0
	for _, d := range descs {
		impl := locksuite.Locks[i]
		if impl.Name != d.Name {
			t.Fatalf("locksuite.Locks[%d] = %q, registry says %q", i, impl.Name, d.Name)
		}
		if impl.New == nil {
			t.Errorf("locksuite kind %q has no constructor", d.Name)
		}
		if impl.Upgradable != d.Caps.Upgrade {
			t.Errorf("locksuite kind %q Upgradable=%v, registry says %v", d.Name, impl.Upgradable, d.Caps.Upgrade)
		}
		if (impl.NewStats != nil) != d.Caps.Instrumented {
			t.Errorf("locksuite kind %q has stats ctor=%v, registry says Instrumented=%v",
				d.Name, impl.NewStats != nil, d.Caps.Instrumented)
		}
		i++
	}
	if locksuite.Locks[i].Name != "sync.RWMutex" {
		t.Fatalf("locksuite.Locks[%d] = %q, want the sync.RWMutex reference entry", i, locksuite.Locks[i].Name)
	}
	i++
	for _, d := range descs {
		if !d.IndicatorMatrix {
			continue
		}
		for _, ind := range lockcore.MatrixIndicators() {
			want := d.Name + "-" + ind
			if locksuite.Locks[i].Name != want {
				t.Fatalf("locksuite.Locks[%d] = %q, want matrix entry %q", i, locksuite.Locks[i].Name, want)
			}
			i++
		}
	}
	if i != len(locksuite.Locks) {
		t.Errorf("locksuite.Locks has %d extra entries beyond the registry-derived set", len(locksuite.Locks)-i)
	}
}

// TestSimlockMatchesRegistry: the simulator's lock table enumerates
// the registry's kinds with the registry's capabilities, then the same
// matrix entries, so every host experiment has a simulated twin.
func TestSimlockMatchesRegistry(t *testing.T) {
	descs := lockcore.Descs()
	i := 0
	for _, d := range descs {
		f := simlock.Locks[i]
		if f.Name != d.Name {
			t.Fatalf("simlock.Locks[%d] = %q, registry says %q", i, f.Name, d.Name)
		}
		if f.Caps != d.Caps {
			t.Errorf("simlock kind %q Caps=%+v, registry says %+v", d.Name, f.Caps, d.Caps)
		}
		if f.New == nil {
			t.Errorf("simlock kind %q has no constructor", d.Name)
		}
		i++
	}
	for _, d := range descs {
		if !d.IndicatorMatrix {
			continue
		}
		for _, ind := range lockcore.MatrixIndicators() {
			want := d.Name + "-" + ind
			f := simlock.Locks[i]
			if f.Name != want {
				t.Fatalf("simlock.Locks[%d] = %q, want matrix entry %q", i, f.Name, want)
			}
			if f.Caps != d.Caps {
				t.Errorf("simlock matrix entry %q Caps=%+v, want base kind's %+v", want, f.Caps, d.Caps)
			}
			i++
		}
	}
	if i != len(simlock.Locks) {
		t.Errorf("simlock.Locks has %d extra entries beyond the registry-derived set", len(simlock.Locks)-i)
	}

	var wantFig5 []string
	for _, d := range descs {
		if d.Figure5 {
			wantFig5 = append(wantFig5, d.Name)
		}
	}
	var gotFig5 []string
	for _, f := range simlock.Figure5Locks() {
		gotFig5 = append(gotFig5, f.Name)
	}
	if strings.Join(gotFig5, ",") != strings.Join(wantFig5, ",") {
		t.Errorf("simlock.Figure5Locks() = %v, registry says %v", gotFig5, wantFig5)
	}
}

// smoke exercises a constructed lock hard enough to matter under
// -race: concurrent readers against a writer, then an upgrade round
// trip where the kind advertises one.
func smoke(t *testing.T, l ollock.Lock, info ollock.KindInfo, biased bool) {
	t.Helper()
	var wg sync.WaitGroup
	shared := 0
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := l.NewProc()
			for i := 0; i < 50; i++ {
				p.RLock()
				_ = shared
				p.RUnlock()
			}
		}()
	}
	pw := l.NewProc()
	for i := 0; i < 25; i++ {
		pw.Lock()
		shared++
		pw.Unlock()
	}
	wg.Wait()

	// The Upgrader capability: advertised procs must implement it and
	// complete a TryUpgrade/Downgrade round trip. The bravo-wrapped
	// construction hides the base lock's upgrade path, so only unbiased
	// constructions are held to it.
	p := l.NewProc()
	u, ok := p.(ollock.Upgrader)
	if !biased {
		if ok != info.Upgrade {
			t.Fatalf("proc implements Upgrader=%v, registry says %v", ok, info.Upgrade)
		}
		if ok {
			p.RLock()
			if !u.TryUpgrade() {
				t.Fatal("sole-holder TryUpgrade failed")
			}
			u.Downgrade()
			p.RUnlock()
		}
	}
}

// TestCapabilityMatrix constructs every kind × option combination: New
// must either reject it with the uniform capability error naming the
// kind, or return a lock that survives a concurrent smoke test. No
// third outcome (panic, nil-nil, misworded error) is allowed.
func TestCapabilityMatrix(t *testing.T) {
	for _, info := range ollock.KindInfos() {
		info := info
		for _, ind := range ollock.IndicatorKinds() {
			for _, wait := range ollock.WaitModes() {
				for _, bias := range []bool{false, true} {
					ind, wait, bias := ind, wait, bias
					name := fmt.Sprintf("%s/%s/%s/bias=%v", info.Kind, ind, wait, bias)
					t.Run(name, func(t *testing.T) {
						opts := []ollock.Option{
							ollock.WithIndicator(ind),
							ollock.WithWait(wait),
							ollock.WithStats(""),
						}
						if bias {
							opts = append(opts, ollock.WithBias())
						}
						l, err := ollock.New(info.Kind, 4, opts...)
						wantIndErr := ind != ollock.IndicatorCSNZI && !info.Indicator
						wantWaitErr := wait != ollock.WaitSpin && !info.Wait
						if wantIndErr || wantWaitErr {
							if err == nil {
								t.Fatalf("New accepted an option the registry says %q does not take", info.Kind)
							}
							msg := err.Error()
							okMsg := (wantWaitErr && strings.Contains(msg, "does not take a wait policy")) ||
								(wantIndErr && strings.Contains(msg, "does not take a read indicator"))
							if !okMsg || !strings.Contains(msg, string(info.Kind)) {
								t.Fatalf("capability error %q is not the uniform form naming kind %q", msg, info.Kind)
							}
							return
						}
						if err != nil {
							t.Fatalf("New rejected a combination the registry allows: %v", err)
						}
						if l == nil {
							t.Fatal("New returned (nil, nil)")
						}
						smoke(t, l, info, bias || info.Biased)
					})
				}
			}
		}
	}
}

// TestProfiledCapability: New accepts WithProfile exactly where the
// registry's Profiled flag says it does, and rejects it elsewhere with
// the uniform capability error naming the kind.
func TestProfiledCapability(t *testing.T) {
	p := ollock.NewProfiler(1)
	for _, info := range ollock.KindInfos() {
		lp := p.Register(string(info.Kind))
		l, err := ollock.New(info.Kind, 4, ollock.WithProfile(lp))
		if info.Profiled {
			if err != nil {
				t.Errorf("New(%s, WithProfile) rejected a kind the registry marks Profiled: %v", info.Kind, err)
				continue
			}
			smoke(t, l, info, info.Biased)
			continue
		}
		if err == nil {
			t.Errorf("New(%s, WithProfile) accepted a kind the registry marks unprofiled", info.Kind)
			continue
		}
		if !strings.Contains(err.Error(), "does not take a profiler") || !strings.Contains(err.Error(), string(info.Kind)) {
			t.Errorf("capability error %q is not the uniform form naming kind %q", err, info.Kind)
		}
	}
}

// TestCancellableCapability: every kind's proc offers the non-blocking
// tries, the Cancellable flag advertises exactly the procs that offer
// the full deadline surface, and an advertised surface actually works —
// a timed acquisition on a free lock succeeds, one under a conflicting
// holder expires.
func TestCancellableCapability(t *testing.T) {
	for _, info := range ollock.KindInfos() {
		info := info
		t.Run(string(info.Kind), func(t *testing.T) {
			l, err := ollock.New(info.Kind, 4)
			if err != nil {
				t.Fatal(err)
			}
			p := l.NewProc()
			if _, ok := p.(ollock.TryProc); !ok {
				t.Fatalf("%s proc does not implement TryProc", info.Kind)
			}
			dp, ok := p.(ollock.DeadlineProc)
			if ok != info.Cancellable {
				t.Fatalf("%s proc implements DeadlineProc=%v, registry says Cancellable=%v", info.Kind, ok, info.Cancellable)
			}
			if !ok {
				return
			}
			if !dp.RLockFor(time.Second) {
				t.Fatal("RLockFor failed on a free lock")
			}
			dp.RUnlock()
			if !dp.LockFor(time.Second) {
				t.Fatal("LockFor failed on a free lock")
			}
			// Timed attempts against the held lock must expire, not hang.
			p2 := l.NewProc().(ollock.DeadlineProc)
			if p2.RLockFor(2 * time.Millisecond) {
				t.Fatal("RLockFor succeeded while write-held")
			}
			if p2.LockFor(2 * time.Millisecond) {
				t.Fatal("LockFor succeeded while write-held")
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := p2.RLockCtx(ctx); err == nil {
				t.Fatal("RLockCtx nil error on a canceled context under a writer")
			}
			if err := p2.LockCtx(ctx); err == nil {
				t.Fatal("LockCtx nil error on a canceled context under a writer")
			}
			dp.Unlock()
			if err := p2.LockCtx(context.Background()); err != nil {
				t.Fatalf("LockCtx on a free lock: %v", err)
			}
			p2.Unlock()
		})
	}
}

// TestChaosCapability: WithChaos rides the instrumentation seam, so New
// accepts it exactly where the registry marks Instrumented, and a
// constructed injector is reachable through ChaosCountOf.
func TestChaosCapability(t *testing.T) {
	for _, info := range ollock.KindInfos() {
		l, err := ollock.New(info.Kind, 4, ollock.WithChaos(1))
		if !info.Instrumented {
			if err == nil {
				t.Errorf("New(%s, WithChaos) accepted a kind the registry marks uninstrumented", info.Kind)
			} else if !strings.Contains(err.Error(), "does not take a chaos injector") || !strings.Contains(err.Error(), string(info.Kind)) {
				t.Errorf("capability error %q is not the uniform form naming kind %q", err, info.Kind)
			}
			continue
		}
		if err != nil {
			t.Errorf("New(%s, WithChaos) rejected an instrumented kind: %v", info.Kind, err)
			continue
		}
		if _, ok := ollock.ChaosCountOf(l); !ok {
			t.Errorf("ChaosCountOf(%s) not ok with an injector attached", info.Kind)
		}
	}
}

// TestBoundedProcsValidated: kinds with a fixed participant capacity
// reject a non-positive maxProcs with a clean error instead of
// panicking in the algorithm constructor.
func TestBoundedProcsValidated(t *testing.T) {
	for _, info := range ollock.KindInfos() {
		for _, n := range []int{0, -1} {
			l, err := ollock.New(info.Kind, n)
			if info.BoundedProcs {
				if err == nil {
					t.Errorf("New(%s, %d) accepted a non-positive capacity", info.Kind, n)
				}
				continue
			}
			if err != nil || l == nil {
				t.Errorf("New(%s, %d) = (%v, %v); unbounded kinds ignore maxProcs", info.Kind, n, l, err)
			}
		}
	}
}
