package ollock

import (
	"io"

	"ollock/internal/prof"
)

// This file exposes the call-site lock profiler (internal/prof) through
// the facade. A Profiler samples acquisitions (one in rate per Proc,
// SetMutexProfileFraction-style) and accumulates, per caller stack, how
// often and how long code contended for and held each registered lock —
// the runtime mutex profile's shape, but per lock and exportable as
// pprof profile.proto, folded flamegraph stacks, or the doctor's
// hottest-call-site attribution. A lock created without WithProfile
// pays exactly one predictable nil-check branch per acquisition — the
// same zero-overhead-off discipline as WithStats and WithTrace.

// Profiler is a call-site profiler shared by any number of profiled
// locks. See internal/prof for the sampling model.
type Profiler = prof.Profiler

// LockProfile is one lock's registration with a Profiler; pass it to
// WithProfile.
type LockProfile = prof.LockProf

// ProfileSnapshot is a point-in-time (or delta) view of a Profiler's
// records, already scaled by the sampling rate. Its WriteProfile and
// WriteFolded methods export pprof protobuf and folded flamegraph text.
type ProfileSnapshot = prof.Snapshot

// ProfileRecord is one call stack's accumulated profile values.
type ProfileRecord = prof.Record

// ProfileSite is one symbolized call site with contention totals.
type ProfileSite = prof.Site

// ProfileMetric selects which value pair a profile export carries.
type ProfileMetric = prof.Metric

const (
	// ProfileContention exports contentions/count + delay/nanoseconds
	// (the runtime mutex-profile shape): how often and how long call
	// sites blocked acquiring.
	ProfileContention = prof.Contention
	// ProfileHold exports holds/count + held/nanoseconds: how often and
	// how long call sites owned the lock.
	ProfileHold = prof.Hold
)

// NewProfiler returns a call-site profiler sampling one acquisition in
// rate per Proc (rate <= 0 selects the default of 8; rate 1 records
// every acquisition). Register each lock to be profiled with
// Profiler.Register, then create the lock with WithProfile.
func NewProfiler(rate int) *Profiler { return prof.New(rate) }

// WithProfile attaches the created lock to a call-site profiler (see
// NewProfiler). Composes with WithStats, WithTrace, WithWait,
// WithIndicator and WithBias: a biased lock shares the registration
// between wrapper and base, so fast-path reads, slow-path acquisitions,
// and bias revocations all land in one per-lock profile without double
// counting (the wrapper owns fast-read holds and charges revocations as
// contention-only samples; the base lock owns everything that reaches
// it).
func WithProfile(lp *LockProfile) Option {
	return func(c *newConfig) { c.lp = lp }
}

// WriteLockProfile writes p's current cumulative profile as a
// gzip-compressed pprof profile.proto carrying the chosen metric —
// loadable with `go tool pprof`. For delta profiles, snapshot twice
// with Profiler.Profile and encode snap2.Sub(snap1) instead.
func WriteLockProfile(w io.Writer, p *Profiler, m ProfileMetric) error {
	return p.Profile().WriteProfile(w, m)
}

// WriteLockFolded writes p's current cumulative profile in folded-stack
// format (one "lock;frame;...;leaf weight" line per stack), directly
// consumable by flamegraph.pl, speedscope, and inferno.
func WriteLockFolded(w io.Writer, p *Profiler, m ProfileMetric) error {
	return p.Profile().WriteFolded(w, m)
}
