module ollock

go 1.22
